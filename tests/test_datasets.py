"""Tests for the synthetic dataset suites and domain generators."""

import numpy as np
import pytest

from repro.datasets.domains import (
    astronomy_dataset,
    gene_expression_dataset,
    stock_dataset,
    weather_dataset,
)
from repro.datasets.suites import SUITES, suite_spec, suite_table, suite_trendlines
from repro.datasets.synthetic import (
    SHAPE_FAMILIES,
    add_peak,
    mixed_collection,
    piecewise,
    seasonal,
)
from repro.errors import DataError


class TestSynthetic:
    def test_piecewise_endpoints(self):
        series = piecewise(50, [0, 10, 0])
        assert series[0] == pytest.approx(0)
        assert series[24] == pytest.approx(10, abs=0.5)
        assert series[-1] == pytest.approx(0)

    def test_piecewise_needs_two_levels(self):
        with pytest.raises(ValueError):
            piecewise(10, [1])

    def test_seasonal_period(self):
        series = seasonal(100, period=50, amplitude=1.0)
        assert series[0] == pytest.approx(series[50], abs=1e-6)

    def test_add_peak(self):
        base = np.zeros(50)
        peaked = add_peak(base, center=25, width=10, height=5.0)
        assert peaked[25] == pytest.approx(5.0)
        assert peaked[0] == 0.0
        assert base[25] == 0.0  # original untouched

    def test_mixed_collection_deterministic(self):
        a = mixed_collection(10, 50, seed=1)
        b = mixed_collection(10, 50, seed=1)
        for (ka, va), (kb, vb) in zip(a, b):
            assert ka == kb
            assert np.array_equal(va, vb)

    def test_mixed_collection_family_keys(self):
        collection = mixed_collection(len(SHAPE_FAMILIES), 40, seed=0)
        families = {key.rsplit("-", 1)[0] for key, _ in collection}
        assert families == set(SHAPE_FAMILIES)


class TestSuites:
    def test_table11_cardinalities(self):
        expected = {
            "weather": (144, 366),
            "worms": (258, 900),
            "50words": (905, 270),
            "realestate": (1777, 138),
            "haptics": (463, 1092),
        }
        for name, (count, length) in expected.items():
            spec = suite_spec(name)
            assert (spec.visualizations, spec.length) == (count, length)

    def test_unknown_suite(self):
        with pytest.raises(DataError):
            suite_spec("imaginary")

    def test_scaled_down_trendlines(self):
        lines = suite_trendlines("weather", max_visualizations=10, max_length=50)
        assert len(lines) == 10
        assert all(tl.n_bins == 50 for tl in lines)

    def test_queries_parse(self):
        from repro.parser import parse

        for spec in SUITES.values():
            for query in spec.fuzzy_queries:
                parse(query)
            parse(spec.non_fuzzy_query)

    def test_realestate_table_has_duplicate_x(self):
        table = suite_table("realestate", max_visualizations=2, max_length=10)
        assert len(table) == 2 * 10 * 3

    def test_suite_table_runs_through_pipeline(self):
        from repro.data.visual_params import VisualParams
        from repro.engine.pipeline import generate_trendlines

        table = suite_table("weather", max_visualizations=4, max_length=30)
        lines = generate_trendlines(table, VisualParams(z="z", x="x", y="y"))
        assert len(lines) == 4


class TestDomains:
    def test_gene_dataset_planted_keys(self):
        table, planted = gene_expression_dataset(n_genes=30, length=36)
        genes = set(table.column("gene").tolist())
        for keys in planted.values():
            assert set(keys) <= genes
        assert "pvt1" in genes and "gbx2" in genes

    def test_stock_dataset(self):
        table, planted = stock_dataset(n_stocks=20, length=60)
        assert set(planted) == {"double-top", "head-shoulders", "cup", "w-shape"}
        assert len(set(table.column("symbol").tolist())) == 20

    def test_weather_dataset_phases(self):
        table, planted = weather_dataset(n_cities=8, length=120)
        assert planted["southern"]
        assert planted["northern"]

    def test_astronomy_dataset(self):
        table, planted = astronomy_dataset(n_stars=20, length=100)
        assert planted["supernova"] == ["sn2026a"]
        assert len(planted["transit"]) >= 1
