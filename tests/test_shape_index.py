"""Persistent shape index: exactness, reuse, fallbacks, precision modes.

The index (:mod:`repro.engine.shape_index`) is a pure accelerator — the
IndexPrune stage may only discard candidates that provably cannot reach
the running top-k floor, so an indexed search must return byte-identical
results to an unindexed one for every backend, kernel, worker count and
transport.  These tests pin that contract, the append-extension reuse
path (extended index == fresh build, bit for bit), the visible
full-scan fallbacks, and the opt-in ``precision="float32"`` mode that
is explicitly *outside* the identity contract.
"""

import numpy as np
import pytest

from repro.algebra import builder as q
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine import pipeline
from repro.engine.executor import ShapeSearchEngine
from repro.engine.parallel import solve_one
from repro.engine.shape_index import (
    MIN_SEED_CANDIDATES,
    ShapeIndex,
    index_supports,
    survives_floor,
)
from repro.errors import ExecutionError

from tests.conftest import make_trendline

UP_DOWN = q.concat(q.up(), q.down())
PARAMS = VisualParams(z="z", x="x", y="y")


def _smooth_collection(count=40, bins=24, seed=0, hit_every=7):
    """Mostly smooth down-trends with a few genuine up-then-down shapes.

    Smoothness matters: the pyramid's bucket bounds are tight only when
    a trendline's local slopes agree, so this is the collection shape on
    which IndexPrune actually prunes (pure noise walks straddle zero
    slope in every bucket and keep bounds near 1).
    """
    rng = np.random.default_rng(seed)
    trendlines = []
    for index in range(count):
        if index % hit_every == 0:
            y = np.concatenate(
                [np.linspace(0, 10, bins // 2), np.linspace(10, 0, bins - bins // 2)]
            )
        else:
            y = np.linspace(10, 0, bins) + rng.normal(0, 0.05, bins)
        trendlines.append(make_trendline(y, key="tl{:03d}".format(index)))
    return trendlines


def _smooth_table(count=40, bins=24, seed=0, hit_every=7):
    rng = np.random.default_rng(seed)
    zs, xs, ys = [], [], []
    for index in range(count):
        if index % hit_every == 0:
            y = np.concatenate(
                [np.linspace(0, 10, bins // 2), np.linspace(10, 0, bins - bins // 2)]
            )
        else:
            y = np.linspace(10, 0, bins) + rng.normal(0, 0.05, bins)
        zs.extend(["g{:03d}".format(index)] * bins)
        xs.extend(range(bins))
        ys.extend(y.tolist())
    return Table.from_arrays(
        z=np.array(zs, dtype=object),
        x=np.array(xs, dtype=float),
        y=np.array(ys, dtype=float),
    )


def _signature(matches):
    """Everything observable about a ranked result, byte for byte."""
    return [
        (
            match.key,
            match.score,
            [
                (p.seg_index, p.start, p.end, p.score, p.slope)
                for p in match.placements
            ],
        )
        for match in matches
    ]


class TestIndexIdentity:
    """Indexed top-k must be byte-identical to the full scan, everywhere."""

    @pytest.mark.parametrize("kernel", ["matrix", "loop"])
    def test_sequential_identity(self, kernel):
        trendlines = _smooth_collection()
        full = ShapeSearchEngine(kernel=kernel).rank(trendlines, UP_DOWN, k=5)
        indexed_engine = ShapeSearchEngine(kernel=kernel, index=True)
        indexed = indexed_engine.rank(trendlines, UP_DOWN, k=5)
        assert _signature(full) == _signature(indexed)
        assert indexed_engine.last_stats.index_pruned > 0

    @pytest.mark.parametrize("algorithm", ["dp", "segment-tree", "greedy"])
    def test_algorithm_identity(self, algorithm):
        trendlines = _smooth_collection()
        full = ShapeSearchEngine(algorithm=algorithm).rank(trendlines, UP_DOWN, k=5)
        with ShapeSearchEngine(algorithm=algorithm, index=True) as engine:
            indexed = engine.rank(trendlines, UP_DOWN, k=5)
        assert _signature(full) == _signature(indexed)

    @pytest.mark.parametrize(
        "workers,backend,shm",
        [(2, "thread", True), (3, "thread", True), (2, "process", True),
         (2, "process", False)],
    )
    def test_parallel_identity(self, workers, backend, shm):
        trendlines = _smooth_collection()
        full = ShapeSearchEngine().rank(trendlines, UP_DOWN, k=5)
        with ShapeSearchEngine(
            workers=workers, backend=backend, shm=shm, index=True
        ) as engine:
            indexed = engine.rank(trendlines, UP_DOWN, k=5)
            assert _signature(full) == _signature(indexed)
            assert engine.last_stats.index_pruned > 0

    def test_shm_dispatched_bounds_identity(self):
        # Above INDEX_DISPATCH_MIN candidates the bound pass itself is
        # sharded over the pool against the published index; the floats
        # (and therefore the pruning decision and the ranked output)
        # must match the in-process path bit for bit.
        trendlines = _smooth_collection(count=280, hit_every=29)
        assert len(trendlines) >= pipeline.INDEX_DISPATCH_MIN
        full = ShapeSearchEngine().rank(trendlines, UP_DOWN, k=5)
        with ShapeSearchEngine(workers=2, backend="process", index=True) as engine:
            indexed = engine.rank(trendlines, UP_DOWN, k=5)
            assert _signature(full) == _signature(indexed)
            assert engine.last_stats.index_pruned > 0
            assert engine.last_stats.index_bounds == "dispatched"

    def test_dispatch_gate_option_and_env(self, monkeypatch):
        # The gate is a named engine option: an explicit argument wins,
        # the environment override is resolved at construction time.
        engine = ShapeSearchEngine(index_dispatch_min=17)
        assert engine.index_dispatch_min == 17
        monkeypatch.setenv("REPRO_INDEX_DISPATCH_MIN", "99")
        assert ShapeSearchEngine().index_dispatch_min == 99
        assert ShapeSearchEngine(index_dispatch_min=5).index_dispatch_min == 5
        monkeypatch.delenv("REPRO_INDEX_DISPATCH_MIN")
        assert ShapeSearchEngine().index_dispatch_min == pipeline.INDEX_DISPATCH_MIN
        monkeypatch.setenv("REPRO_INDEX_DISPATCH_MIN", "not-a-number")
        with pytest.raises(ExecutionError):
            ShapeSearchEngine()

    def test_inline_bounds_path_recorded(self):
        trendlines = _smooth_collection()
        with ShapeSearchEngine(index=True) as engine:
            engine.rank(trendlines, UP_DOWN, k=5)
            assert engine.last_stats.index_bounds == "inline"
            assert engine.last_stats.index_source in ("memory", "built")

    def test_execute_identity_and_stats(self):
        table = _smooth_table()
        full = ShapeSearchEngine().run(table, PARAMS, UP_DOWN, k=5)
        engine = ShapeSearchEngine(index=True)
        indexed = engine.run(table, PARAMS, UP_DOWN, k=5)
        assert _signature(full) == _signature(indexed)
        assert "IndexPrune" in indexed.plan
        assert indexed.stats.index_candidates == 40
        assert indexed.stats.index_pruned > 0
        assert indexed.candidates_pruned == indexed.stats.index_pruned

    def test_repeated_runs_reuse_table_index(self):
        table = _smooth_table()
        engine = ShapeSearchEngine(index=True)
        first = engine.run(table, PARAMS, UP_DOWN, k=5)
        second = engine.run(table, PARAMS, UP_DOWN, k=5)
        assert _signature(first) == _signature(second)
        state = table._shape_index_state
        assert len(state) == 1  # one index key, reused across runs


class TestAppendExtension:
    """append_rows keeps the index: extension == fresh build, bitwise."""

    def test_extended_equals_fresh_build(self):
        base = _smooth_collection(count=12, hit_every=5)
        index = ShapeIndex.build(base)
        extended_collection = base + _smooth_collection(
            count=4, seed=99, hit_every=3
        )
        extended = index.extended(extended_collection)
        fresh = ShapeIndex.build(extended_collection)
        assert len(extended) == len(fresh) == len(extended_collection)
        for ours, theirs in zip(extended.entries, fresh.entries):
            assert (ours is None) == (theirs is None)
            if ours is None:
                continue
            assert ours.n_bins == theirs.n_bins
            assert len(ours.levels) == len(theirs.levels)
            for (w_a, amin_a, amax_a), (w_b, amin_b, amax_b) in zip(
                ours.levels, theirs.levels
            ):
                assert w_a == w_b
                assert np.array_equal(amin_a, amin_b)
                assert np.array_equal(amax_a, amax_b)
        # Unchanged trendlines reuse the *same* entry objects (work skip).
        assert all(
            extended.entries[i] is index.entries[i]
            for i in range(len(base))
            if index.entries[i] is not None
        )

    def test_append_rows_keeps_index_and_identity(self):
        table = _smooth_table()
        engine = ShapeSearchEngine(index=True)
        engine.run(table, PARAMS, UP_DOWN, k=5)
        rng = np.random.default_rng(5)
        records = []
        for offset in range(6):
            records.append(
                {"z": "g000", "x": 24.0 + offset, "y": float(rng.normal(0, 1))}
            )
            records.append(
                {"z": "gnew", "x": float(offset), "y": float(offset)}
            )
        appended = table.append_rows(records)
        indexed = engine.run(appended, PARAMS, UP_DOWN, k=5)
        full = ShapeSearchEngine().run(appended, PARAMS, UP_DOWN, k=5)
        assert _signature(full) == _signature(indexed)
        # The appended table's index extended the base table's: every
        # group the append did not touch reuses its entry object.
        (base_index,) = table._shape_index_state.values()
        (new_index,) = appended._shape_index_state.values()
        reused = sum(
            1
            for entry in new_index.entries
            if entry is not None and any(entry is old for old in base_index.entries)
        )
        assert reused >= 38  # 40 groups, only g000 changed and gnew is new


class TestFallbacks:
    """When the index cannot prove bounds, the plan visibly full-scans."""

    def test_unbounded_unit_falls_back_to_full_scan(self):
        sketchy = q.concat(q.up(), q.sketch([(0.0, 1.0), (0.5, 0.2), (1.0, 0.8)]))
        table = _smooth_table()
        engine = ShapeSearchEngine(index=True)
        result = engine.run(table, PARAMS, sketchy, k=5)
        assert "IndexPrune" not in result.plan
        assert result.stats.index_candidates == 0
        compiled = engine.compile(sketchy)
        assert not index_supports(compiled)

    def test_small_collection_skips_pruning(self):
        trendlines = _smooth_collection(count=10)
        assert len(trendlines) <= max(5, MIN_SEED_CANDIDATES)
        full = ShapeSearchEngine().rank(trendlines, UP_DOWN, k=5)
        engine = ShapeSearchEngine(index=True)
        indexed = engine.rank(trendlines, UP_DOWN, k=5)
        assert _signature(full) == _signature(indexed)
        assert engine.last_stats.index_pruned == 0

    def test_collective_pruning_takes_precedence(self):
        table = _smooth_table()
        engine = ShapeSearchEngine(
            index=True, enable_pruning=True, algorithm="segment-tree"
        )
        result = engine.run(table, PARAMS, UP_DOWN, k=5)
        assert "IndexPrune" not in result.plan
        assert "pruning" in result.plan  # the collective driver ran instead

    def test_index_off_by_default(self):
        table = _smooth_table()
        result = ShapeSearchEngine().run(table, PARAMS, UP_DOWN, k=5)
        assert "IndexPrune" not in result.plan

    def test_evicted_table_state_rebuilds(self):
        # The per-table attachment keeps at most _MAX_TABLE_INDEXES
        # entries; once older keys are evicted a re-run simply rebuilds
        # (through the engine cache or from scratch) with identical
        # results — eviction is a work-skip loss, never a correctness one.
        table = _smooth_table()
        engine = ShapeSearchEngine(index=True)
        baseline = engine.run(table, PARAMS, UP_DOWN, k=5)
        for normalize in range(engine._MAX_TABLE_INDEXES + 1):
            # Distinct index keys: vary the visual params' bin width.
            params = VisualParams(z="z", x="x", y="y", bin_width=2.0 + normalize)
            engine.run(table, params, UP_DOWN, k=5)
        assert len(table._shape_index_state) <= engine._MAX_TABLE_INDEXES
        again = engine.run(table, PARAMS, UP_DOWN, k=5)
        assert _signature(baseline) == _signature(again)


class TestPrecisionModes:
    def test_float32_with_loop_kernel_rejected(self):
        with pytest.raises(ExecutionError, match="float32"):
            ShapeSearchEngine(precision="float32", kernel="loop")

    def test_unknown_precision_rejected(self):
        with pytest.raises(ExecutionError, match="precision"):
            ShapeSearchEngine(precision="float16")

    def test_float32_scores_close_to_float64(self):
        table = _smooth_table()
        exact = ShapeSearchEngine().run(table, PARAMS, UP_DOWN, k=5)
        approx = ShapeSearchEngine(precision="float32").run(
            table, PARAMS, UP_DOWN, k=5
        )
        assert "Cast[float32]" in approx.plan
        assert np.allclose(
            [m.score for m in exact], [m.score for m in approx], atol=1e-3
        )


class TestShapeIndexUnit:
    def test_pack_roundtrip_bounds_bitwise(self):
        trendlines = _smooth_collection(count=20)
        index = ShapeIndex.build(trendlines)
        compiled = ShapeSearchEngine().compile(UP_DOWN)
        values, layout = index.pack()
        rebuilt = ShapeIndex.from_packed(values, layout)
        assert len(rebuilt) == len(index)
        original = index.upper_bounds(compiled)
        roundtrip = rebuilt.upper_bounds(compiled)
        assert np.array_equal(original, roundtrip)

    @pytest.mark.parametrize(
        "query",
        [q.concat(q.up()), q.concat(q.down()), UP_DOWN,
         q.concat(q.flat()), q.concat(q.down(), q.up(), q.down())],
    )
    def test_upper_bound_admissible(self, query):
        # The soundness contract itself: for every candidate the bucket
        # bound must dominate the exact DP score, smooth or noisy.
        rng = np.random.default_rng(11)
        trendlines = _smooth_collection(count=15, hit_every=4) + [
            make_trendline(rng.normal(0, 1, 30).cumsum(), key="w{}".format(i))
            for i in range(15)
        ]
        engine = ShapeSearchEngine()
        compiled = engine.compile(query)
        index = ShapeIndex.build(trendlines)
        bounds = index.upper_bounds(compiled)
        for position, trendline in enumerate(trendlines):
            exact = solve_one(trendline, compiled, "dp").score
            assert bounds[position] >= exact, trendline.key

    def test_survives_floor_is_the_single_seam(self):
        bounds = np.array([0.2, 0.5, 0.8])
        keep = survives_floor(bounds, 0.5)
        assert keep.tolist() == [False, True, True]


class TestTailStateBudget:
    def test_stats_shape_and_budget_eviction(self):
        from repro.api import ShapeSearch, TailSearch

        table = _smooth_table(count=8)
        engine = ShapeSearchEngine(algorithm="dp")
        previous = pipeline.tail_state_stats()["budget"]
        try:
            with ShapeSearch(table, engine=engine) as session:
                tail = session.tail(UP_DOWN, z="z", x="x", y="y", k=3)
                tail.append_rows(
                    [{"z": "g000", "x": 24.0, "y": 1.0},
                     {"z": "g000", "x": 25.0, "y": 2.0}]
                )
                stats = TailSearch.state_stats()
                assert set(stats) == {"entries", "bytes", "budget", "evictions"}
                assert stats["entries"] > 0
                assert stats["bytes"] > 0
                # Shrinking the budget to zero evicts every retained state.
                pipeline.set_tail_state_budget(0)
                drained = pipeline.tail_state_stats()
                assert drained["entries"] == 0
                assert drained["bytes"] == 0
                assert drained["evictions"] >= stats["entries"]
                # ...and the next refresh still works (cold re-solve).
                result = tail.append_rows([{"z": "g000", "x": 26.0, "y": 3.0}])
                assert len(result) > 0
        finally:
            pipeline.set_tail_state_budget(previous)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            pipeline.set_tail_state_budget(-1)
