"""Unit tests for the parallel batch execution layer."""

import numpy as np
import pytest

from repro.algebra import builder as q
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.chains import compile_query
from repro.engine.executor import ExecutionStats, ShapeSearchEngine
from repro.engine.parallel import (
    BACKENDS,
    ParallelEngine,
    WorkerPool,
    default_workers,
    make_chunks,
    merge_shard_results,
    parallel_rank_items,
    score_shard,
)
from repro.errors import ExecutionError

from tests.conftest import make_trendline

QUERY = compile_query(q.concat(q.up(), q.down()))


def _collection(count=12, seed=5, points=30):
    rng = np.random.default_rng(seed)
    return [
        make_trendline(rng.normal(0, 1, points).cumsum(), key="p{:02d}".format(index))
        for index in range(count)
    ]


class TestChunking:
    def test_chunks_cover_collection_in_order(self):
        trendlines = _collection(10)
        chunks = make_chunks(trendlines, workers=3, chunk_size=4)
        assert [base for base, _ in chunks] == [0, 4, 8]
        flattened = [tl for _, chunk in chunks for tl in chunk]
        assert [tl.key for tl in flattened] == [tl.key for tl in trendlines]

    def test_default_chunk_size_scales_with_workers(self):
        chunks = make_chunks(_collection(100), workers=4)
        assert 1 < len(chunks) <= 100
        assert sum(len(chunk) for _, chunk in chunks) == 100

    def test_empty_collection(self):
        assert make_chunks([], workers=4) == []

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ExecutionError):
            make_chunks(_collection(4), workers=2, chunk_size=0)


class TestShardScoring:
    def test_shard_keeps_local_top_k(self):
        trendlines = _collection(10)
        shard = score_shard(trendlines, 0, QUERY, k=3)
        assert len(shard.items) == 3
        assert shard.scored == 10

    def test_global_positions_offset(self):
        trendlines = _collection(4)
        shard = score_shard(trendlines, base_position=100, query=QUERY, k=10)
        positions = sorted(position for _, position, _, _ in shard.items)
        assert positions == [100, 101, 102, 103]

    def test_merge_equals_sequential_selection(self):
        trendlines = _collection(20)
        sequential = ShapeSearchEngine().rank(trendlines, QUERY, k=5)
        shards = [
            score_shard(chunk, base, QUERY, k=5)
            for base, chunk in make_chunks(trendlines, workers=4, chunk_size=3)
        ]
        merged = merge_shard_results(shards, k=5)
        merged_sorted = sorted(merged, key=lambda item: (-item[0], str(item[2].key)))
        assert [(m.key, m.score) for m in sequential] == [
            (tl.key, score) for score, _, tl, _ in merged_sorted
        ]

    def test_eager_discard_counted_in_shards(self):
        # k=1 fills each shard-local heap immediately, so the floor-aware
        # eager check can skip the contradicted falling candidates.
        pinned = compile_query(q.concat(q.up(x_start=0, x_end=20), q.down()))
        peak = np.concatenate([np.linspace(0, 9, 21), np.linspace(9, 0, 9)])
        collection = []
        for shard_index in range(2):
            # Each shard leads with a genuine up-then-down match, so the
            # shard floor is high and the contradicted falling candidates
            # (pinned 'up' scores negative) are provably hopeless.
            collection.append(make_trendline(peak, key="peak{}".format(shard_index)))
            collection.extend(
                make_trendline(np.linspace(9, 0, 30), key="fall{}-{}".format(shard_index, i))
                for i in range(3)
            )
        stats = ExecutionStats()
        pool = WorkerPool(workers=2)
        try:
            parallel_rank_items(collection, pinned, 1, pool, chunk_size=4, stats=stats)
        finally:
            pool.shutdown()
        assert stats.eager_discarded >= 2
        assert stats.scored + stats.eager_discarded == 8
        assert stats.shards == 2


class TestWorkerPool:
    def test_backends_constant(self):
        assert set(BACKENDS) == {"thread", "process"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutionError):
            WorkerPool(workers=2, backend="fiber")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ExecutionError):
            WorkerPool(workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1
        assert WorkerPool().workers == default_workers()

    def test_single_worker_runs_inline(self):
        pool = WorkerPool(workers=1)
        assert pool.map(lambda value: value * 2, [1, 2, 3]) == [2, 4, 6]
        assert pool._pool is None  # never materialized a pool

    def test_context_manager_shuts_down(self):
        with WorkerPool(workers=2) as pool:
            assert pool.map(len, [[1], [1, 2]]) == [1, 2]
            assert pool._pool is not None
        assert pool._pool is None

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(workers=2)
        pool.map(len, [[1]])
        pool.shutdown()
        pool.shutdown()
        assert pool._pool is None

    def test_finalizer_releases_forgotten_pool(self):
        pool = WorkerPool(workers=2)
        pool.map(len, [[1]])
        executor = pool._pool
        finalizer = pool._finalizer
        assert finalizer.alive
        finalizer()  # what gc / interpreter exit runs
        assert executor._shutdown


class TestProcessBackend:
    def test_process_results_match_sequential(self):
        trendlines = _collection(10)
        sequential = ShapeSearchEngine().rank(trendlines, QUERY, k=4)
        with ShapeSearchEngine(workers=2, backend="process") as engine:
            parallel = engine.rank(trendlines, QUERY, k=4)
        assert [(m.key, m.score) for m in sequential] == [
            (m.key, m.score) for m in parallel
        ]

    def test_shm_and_pickling_transports_agree(self):
        trendlines = _collection(12)
        sequential = ShapeSearchEngine().rank(trendlines, QUERY, k=5)
        with ShapeSearchEngine(workers=2, backend="process", shm=True) as engine:
            via_shm = engine.rank(trendlines, QUERY, k=5)
        with ShapeSearchEngine(workers=2, backend="process", shm=False) as engine:
            via_pickle = engine.rank(trendlines, QUERY, k=5)
        signatures = [
            [(m.key, m.score) for m in matches]
            for matches in (sequential, via_shm, via_pickle)
        ]
        assert signatures[0] == signatures[1] == signatures[2]

    def test_shm_transport_aggregates_stats(self):
        trendlines = _collection(12)
        with ShapeSearchEngine(workers=2, backend="process", chunk_size=3) as engine:
            _, stats = engine.rank_with_stats(trendlines, QUERY, k=4)
        assert stats.shards == 4
        assert stats.scored + stats.eager_discarded == 12

    def test_shm_process_pool_uses_worker_init(self):
        with ShapeSearchEngine(workers=2, backend="process") as engine:
            pool = engine._resolve_pool(None)
            from repro.engine.shm import worker_init

            assert pool.initializer is worker_init
        with ShapeSearchEngine(workers=2, backend="process", shm=False) as engine:
            assert engine._resolve_pool(None).initializer is None

    def test_thread_pool_never_gets_process_initializer(self):
        with ShapeSearchEngine(workers=2, backend="thread") as engine:
            assert engine._resolve_pool(None).initializer is None


class TestParallelEngine:
    def test_defaults(self):
        engine = ParallelEngine()
        assert engine.workers == default_workers()
        assert engine.cache is not None
        engine.close()

    def test_bad_backend_rejected(self):
        with pytest.raises(ExecutionError):
            ParallelEngine(backend="gpu")

    def test_end_to_end_matches_sequential(self):
        trendlines = _collection(15)
        sequential = ShapeSearchEngine().rank(trendlines, QUERY, k=5)
        with ParallelEngine(workers=3, chunk_size=4) as engine:
            parallel = engine.rank(trendlines, QUERY, k=5)
        assert [(m.key, m.score) for m in sequential] == [
            (m.key, m.score) for m in parallel
        ]


class TestExecuteMany:
    def _table(self):
        rng = np.random.default_rng(11)
        zs, xs, ys = [], [], []
        for key in ("a", "b", "c", "d", "e"):
            series = rng.normal(0, 1, 30).cumsum()
            for index, value in enumerate(series):
                zs.append(key)
                xs.append(float(index))
                ys.append(float(value))
        return Table.from_arrays(z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys))

    def test_batch_matches_individual_searches(self):
        table = self._table()
        params = VisualParams(z="z", x="x", y="y")
        queries = [q.concat(q.up(), q.down()), q.concat(q.down(), q.up())]
        engine = ShapeSearchEngine()
        batch = engine.run_many(table, params, queries, k=3)
        individual = [engine.run(table, params, query, k=3) for query in queries]
        assert [
            [(m.key, m.score) for m in result] for result in batch
        ] == [[(m.key, m.score) for m in result] for result in individual]

    def test_batch_amortizes_extraction(self, monkeypatch):
        import repro.engine.executor as executor_module

        calls = []
        real = executor_module.generate_trendlines

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(executor_module, "generate_trendlines", counting)
        table = self._table()
        params = VisualParams(z="z", x="x", y="y")
        queries = [
            q.concat(q.up(), q.down()),
            q.concat(q.down(), q.up()),
            q.concat(q.up(), q.down(), q.up()),
        ]
        ShapeSearchEngine().run_many(table, params, queries, k=2)
        # Three fuzzy queries share one EXTRACT/GROUP pass.
        assert len(calls) == 1

    def test_batch_separates_y_constrained_queries(self, monkeypatch):
        import repro.engine.executor as executor_module

        calls = []
        real = executor_module.generate_trendlines

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(executor_module, "generate_trendlines", counting)
        table = self._table()
        params = VisualParams(z="z", x="x", y="y")
        queries = [
            q.concat(q.up(), q.down()),  # normalized-y generation
            q.segment(pattern=None, y_start=0.0, y_end=5.0),  # raw-y generation
        ]
        ShapeSearchEngine().run_many(table, params, queries, k=2)
        assert len(calls) == 2

    def test_batch_stats_report_reuse(self):
        table = self._table()
        params = VisualParams(z="z", x="x", y="y")
        queries = [q.concat(q.up(), q.down()), q.concat(q.down(), q.up())]
        _, stats_list = ShapeSearchEngine().execute_many_with_stats(
            table, params, queries, k=2
        )
        assert not stats_list[0].trendline_cache_hit
        assert stats_list[1].trendline_cache_hit  # reused the batch generation
        assert all(s.extracted == s.candidates for s in stats_list)


class TestExtractedHint:
    def test_zero_hint_preserved(self):
        engine = ShapeSearchEngine()
        trendlines = _collection(4)
        _, stats = engine.rank_with_stats(trendlines, QUERY, k=2, extracted_hint=0)
        assert stats.extracted == 0
        assert stats.candidates == 4
