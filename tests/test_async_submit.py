"""The non-blocking submit API: SearchFuture, progress, cooperative cancel.

The acceptance contract of the redesign: ``prepared.submit()`` returns
before scoring completes on the thread *and* process backends, a cancel
on a multi-shard search leaves the pool reusable with a subsequent run
byte-identical to an uncancelled one, and per-shard progress flows from
the Score stage to the caller's callback.

Timing strategy: a blocking UDP (gated on a ``threading.Event``) proves
non-blocking submission deterministically on the thread backend; the
process backend uses a sleeping UDP (inherited by forked workers) where
only *relative* durations matter.
"""

import threading
import time

import numpy as np
import pytest

from repro import (
    ResultSet,
    SearchCancelled,
    SearchFuture,
    ShapeSearch,
    temporary_udp,
)
from repro.data.table import Table
from repro.engine.control import ExecutionControl


def _table(groups=12, length=25, seed=1):
    rng = np.random.default_rng(seed)
    zs, xs, ys = [], [], []
    for g in range(groups):
        values = rng.normal(0, 1, length).cumsum()
        for i, v in enumerate(values):
            zs.append("g{:02d}".format(g))
            xs.append(float(i))
            ys.append(float(v))
    return Table.from_arrays(
        z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys)
    )


def _sig(matches):
    return [(m.key, m.score) for m in matches]


def _sleep_udp(values, slope):
    time.sleep(0.02)
    return 0.5


class TestSubmitBasics:
    def test_submit_resolves_to_run_result(self):
        with ShapeSearch(_table()) as session:
            prepared = session.prepare("[p=up][p=down]", z="z", x="x", y="y")
            future = prepared.submit(k=3)
            assert isinstance(future, SearchFuture)
            results = future.result(timeout=60)
            assert isinstance(results, ResultSet)
            assert future.done() and not future.cancelled()
            reference = prepared.run(k=3)
            assert _sig(results) == _sig(reference)
            assert results.plan == reference.plan

    def test_submit_returns_before_scoring_completes_thread_backend(self):
        gate = threading.Event()
        started = threading.Event()

        def blocking(values, slope):
            started.set()
            assert gate.wait(timeout=60)
            return 0.5

        with ShapeSearch(_table(groups=4), workers=2) as session:
            with temporary_udp("gate", blocking):
                prepared = session.prepare("[p=udp:gate]", z="z", x="x", y="y")
                future = prepared.submit(k=2)
                # The driver is provably mid-scoring (a worker is parked
                # on the gate) while the caller already holds the future.
                assert started.wait(timeout=60)
                assert not future.done()
                gate.set()
                results = future.result(timeout=60)
        assert len(results) > 0

    def test_submit_returns_before_scoring_completes_process_backend(self):
        with temporary_udp("sleepy", _sleep_udp):
            with ShapeSearch(_table(groups=8), workers=2, backend="process") as session:
                prepared = session.prepare("[p=udp:sleepy]", z="z", x="x", y="y")
                submitted_at = time.perf_counter()
                future = prepared.submit(k=2)
                submit_cost = time.perf_counter() - submitted_at
                done_immediately = future.done()
                results = future.result(timeout=120)
                total = time.perf_counter() - submitted_at
                # Submission is instant relative to the execution it started.
                assert submit_cost < total / 2
                assert not done_immediately
                assert len(results) > 0

    def test_result_timeout_raises_and_keeps_running(self):
        gate = threading.Event()

        def blocking(values, slope):
            assert gate.wait(timeout=60)
            return 0.5

        with ShapeSearch(_table(groups=3)) as session:
            with temporary_udp("gate2", blocking):
                future = session.prepare(
                    "[p=udp:gate2]", z="z", x="x", y="y"
                ).submit(k=1)
                with pytest.raises(TimeoutError):
                    future.result(timeout=0.05)
                assert not future.done()
                gate.set()
                assert len(future.result(timeout=60)) > 0

    def test_progress_callback_fed_per_shard(self):
        events = []
        with ShapeSearch(_table(groups=10), workers=2) as session:
            session.engine.chunk_size = 1  # ten single-group shards
            prepared = session.prepare("[p=up]", z="z", x="x", y="y")
            future = prepared.submit(k=3, progress=lambda c, t: events.append((c, t)))
            future.result(timeout=60)
        assert events[0] == (0, 10)  # Score stage announcing its shard count
        assert events[-1] == (10, 10)
        completed = [c for c, _t in events]
        assert completed == sorted(completed)
        assert future.progress == (10, 10)

    def test_raising_progress_callback_does_not_poison_search(self):
        def bad_progress(completed, total):
            raise RuntimeError("observer bug")

        with ShapeSearch(_table(groups=6), workers=2) as session:
            session.engine.chunk_size = 1
            prepared = session.prepare("[p=up]", z="z", x="x", y="y")
            future = prepared.submit(k=3, progress=bad_progress)
            results = future.result(timeout=60)
            assert _sig(results) == _sig(prepared.run(k=3))

    def test_exception_lands_on_future(self):
        def broken(values, slope):
            raise RuntimeError("boom")

        with ShapeSearch(_table(groups=3)) as session:
            with temporary_udp("broken", broken):
                future = session.prepare(
                    "[p=udp:broken]", z="z", x="x", y="y"
                ).submit(k=1)
                assert isinstance(future.exception(timeout=60), RuntimeError)
                with pytest.raises(RuntimeError):
                    future.result(timeout=60)
                assert future.done() and not future.cancelled()


class TestCancellation:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_cancel_multishard_then_rerun_byte_identical(self, backend):
        table = _table(groups=12)
        with ShapeSearch(table, workers=2, backend=backend) as session:
            session.engine.chunk_size = 1  # one shard per group
            with temporary_udp("sleepy", _sleep_udp):
                prepared = session.prepare("[p=udp:sleepy]", z="z", x="x", y="y")
                future = prepared.submit(k=3)
                while future.progress[0] < 1:  # let at least one shard land
                    time.sleep(0.005)
                assert future.cancel()
                with pytest.raises(SearchCancelled):
                    future.result(timeout=120)
                assert future.cancelled()
                # The pool is reusable and the rerun is byte-identical to
                # an uncancelled execution on a fresh session.
                rerun = prepared.run(k=3)
                resubmitted = prepared.submit(k=3).result(timeout=120)
        with ShapeSearch(table, workers=2, backend=backend) as fresh:
            fresh.engine.chunk_size = 1
            with temporary_udp("sleepy", _sleep_udp):
                reference = fresh.prepare(
                    "[p=udp:sleepy]", z="z", x="x", y="y"
                ).run(k=3)
        assert _sig(rerun) == _sig(reference)
        assert _sig(resubmitted) == _sig(reference)

    def test_cancel_before_dispatch(self):
        gate = threading.Event()

        def blocking(values, slope):
            assert gate.wait(timeout=60)
            return 0.5

        with ShapeSearch(_table(groups=3)) as session:
            with temporary_udp("gate3", blocking):
                prepared = session.prepare("[p=udp:gate3]", z="z", x="x", y="y")
                # Occupy both driver threads so the third submit is queued,
                # then cancel it before it ever starts.
                first = prepared.submit(k=1)
                second = prepared.submit(k=1)
                queued = prepared.submit(k=1)
                assert queued.cancel()
                with pytest.raises(SearchCancelled):
                    queued.result(timeout=60)
                gate.set()
                assert len(first.result(timeout=60)) > 0
                assert len(second.result(timeout=60)) > 0

    def test_cancel_after_completion_returns_false(self):
        with ShapeSearch(_table(groups=3)) as session:
            future = session.prepare("[p=up]", z="z", x="x", y="y").submit(k=1)
            results = future.result(timeout=60)
            assert not future.cancel()
            assert not future.cancelled()
            assert future.result(timeout=1) is results

    def test_cancel_true_guarantees_cancelled_resolution(self):
        # The race where cancel() lands after the pipeline's last check
        # but before the driver resolves: a True cancel() must still
        # resolve the future as cancelled (the result is discarded).
        from repro.results import SearchFuture

        control = ExecutionControl()
        future = SearchFuture(control)
        assert future._start()
        assert future.cancel()
        future._finish(result="late result")
        assert future.cancelled()
        with pytest.raises(SearchCancelled):
            future.result(timeout=1)

    def test_cancel_true_wraps_concurrent_execution_error(self):
        # cancel() == True must resolve as cancelled even when the
        # execution fails concurrently; the real error stays chained.
        from repro.results import SearchFuture

        control = ExecutionControl()
        future = SearchFuture(control)
        assert future._start()
        assert future.cancel()
        future._finish(exception=RuntimeError("worker died"))
        assert future.cancelled()
        resolution = future.exception(timeout=1)
        assert isinstance(resolution, SearchCancelled)
        assert isinstance(resolution.__cause__, RuntimeError)

    def test_sequential_path_cancel_drops_single_shard(self):
        # workers=1 routes through SequentialScore: the whole collection
        # is one shard, dropped when the cancel precedes scoring.
        control = ExecutionControl()
        control.cancel()
        session = ShapeSearch(_table(groups=3))
        prepared = session.prepare("[p=up]", z="z", x="x", y="y")
        with pytest.raises(SearchCancelled):
            session.engine.run(
                session.table, prepared.params, prepared.compiled, k=1,
                control=control,
            )
        assert control.dropped == 1


class TestSubmitMany:
    def test_batch_futures_resolve_in_order(self):
        with ShapeSearch(_table(groups=8)) as session:
            queries = ["[p=up][p=down]", "[p=down][p=up]", "[p=up]"]
            futures = session.submit_many(queries, z="z", x="x", y="y", k=3)
            assert len(futures) == 3
            gathered = [future.result(timeout=120) for future in futures]
            for query, results in zip(queries, gathered):
                expected = session.prepare(query, z="z", x="x", y="y").run(k=3)
                assert _sig(results) == _sig(expected)

    def test_batch_progress_carries_query_index(self):
        events = []
        with ShapeSearch(_table(groups=6)) as session:
            futures = session.submit_many(
                ["[p=up]", "[p=down]"], z="z", x="x", y="y", k=2,
                progress=lambda i, c, t: events.append((i, c, t)),
            )
            for future in futures:
                future.result(timeout=120)
        assert {index for index, _c, _t in events} == {0, 1}

    def test_cancelling_one_future_spares_the_rest(self):
        with temporary_udp("sleepy", _sleep_udp):
            with ShapeSearch(_table(groups=6), workers=2) as session:
                session.engine.chunk_size = 1
                futures = session.submit_many(
                    ["[p=udp:sleepy]", "[p=up]", "[p=down]"],
                    z="z", x="x", y="y", k=2,
                )
                assert futures[0].cancel()
                with pytest.raises(SearchCancelled):
                    futures[0].result(timeout=120)
                assert len(futures[1].result(timeout=120)) > 0
                assert len(futures[2].result(timeout=120)) > 0

    def test_batch_amortizes_generation(self, monkeypatch):
        import repro.engine.executor as executor_module

        calls = []
        real = executor_module.generate_trendlines

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(executor_module, "generate_trendlines", counting)
        with ShapeSearch(_table(groups=6)) as session:
            futures = session.submit_many(
                ["[p=up][p=down]", "[p=down][p=up]", "[p=up]"],
                z="z", x="x", y="y", k=2,
            )
            for future in futures:
                future.result(timeout=120)
        # One shared EXTRACT/GROUP pass for the all-fuzzy batch.
        assert len(calls) == 1


class TestEngineClose:
    def test_close_resolves_queued_futures_as_cancelled(self):
        gate = threading.Event()

        def blocking(values, slope):
            assert gate.wait(timeout=60)
            return 0.5

        session = ShapeSearch(_table(groups=3))
        with temporary_udp("gate4", blocking):
            prepared = session.prepare("[p=udp:gate4]", z="z", x="x", y="y")
            running = [prepared.submit(k=1), prepared.submit(k=1)]
            queued = prepared.submit(k=1)
            closer = threading.Thread(target=session.close)
            closer.start()
            gate.set()  # let the two running drivers finish
            closer.join(timeout=60)
            assert not closer.is_alive()
            for future in running:
                assert len(future.result(timeout=60)) > 0
            with pytest.raises(SearchCancelled):
                queued.result(timeout=60)

    def test_engine_usable_for_blocking_run_after_close(self):
        session = ShapeSearch(_table(groups=3))
        prepared = session.prepare("[p=up]", z="z", x="x", y="y")
        prepared.submit(k=1).result(timeout=60)
        session.close()
        assert len(prepared.run(k=1)) > 0


class TestSubmitStorm:
    """Serving-shaped load: N tenants x M queries with randomized cancels.

    The serving layer multiplexes every tenant's searches over per-table
    sessions and sheds load by cancelling queued futures; these tests pin
    the session-API guarantees it leans on — no cross-tenant bleed under
    interleaved submits, cancelled futures always resolve, post-cancel
    reruns are byte-identical, and the worker pool is reused rather than
    rebuilt across the storm.
    """

    QUERIES = ["[p=up][p=down]", "[p=down][p=up]", "[p=up]", "[p=down]"]

    def test_multi_tenant_storm_randomized_cancels_no_bleed(self):
        # One session per tenant over tenant-specific data (distinct
        # seeds), exactly the registry's model.  Reference signatures
        # come from fresh single-query sessions so any bleed between
        # concurrently storming tenants shows up as a signature diff.
        tenants = ["alpha", "beta", "gamma"]
        tables = {
            name: _table(groups=8, seed=index + 10)
            for index, name in enumerate(tenants)
        }
        reference = {}
        for name in tenants:
            with ShapeSearch(tables[name]) as clean:
                for query in self.QUERIES:
                    results = clean.prepare(
                        query, z="z", x="x", y="y"
                    ).run(k=3)
                    reference[name, query] = _sig(results)

        rng = np.random.default_rng(2024)
        sessions = {
            name: ShapeSearch(tables[name], workers=2) for name in tenants
        }
        try:
            prepared = {
                (name, query): sessions[name].prepare(
                    query, z="z", x="x", y="y"
                )
                for name in tenants
                for query in self.QUERIES
            }
            inflight = []
            for repeat in range(3):
                for name in tenants:
                    for query in self.QUERIES:
                        future = prepared[name, query].submit(k=3)
                        wants_cancel = bool(rng.random() < 0.35)
                        if wants_cancel:
                            future.cancel()
                        inflight.append((name, query, future, wants_cancel))

            outcomes = {"completed": 0, "cancelled": 0}
            for name, query, future, wants_cancel in inflight:
                try:
                    results = future.result(timeout=120)
                except SearchCancelled:
                    assert wants_cancel  # only requested cancels cancel
                    outcomes["cancelled"] += 1
                else:
                    assert _sig(results) == reference[name, query]
                    outcomes["completed"] += 1
            assert outcomes["completed"] > 0  # the storm did real work
            assert outcomes["cancelled"] > 0  # ... and real cancels

            # Post-cancel reruns on the stormed sessions stay
            # byte-identical to the clean references.
            for name in tenants:
                for query in self.QUERIES:
                    rerun = prepared[name, query].run(k=3)
                    assert _sig(rerun) == reference[name, query]
        finally:
            for session in sessions.values():
                session.close()

    def test_gated_cancel_storm_reuses_pool(self):
        # Deterministic cancels: a gated UDP holds every shard, half the
        # futures are cancelled while provably incomplete, then the gate
        # opens.  Survivors finish with real results, cancelled futures
        # raise, and the engine's worker pool is the same object before
        # and after the storm (serving keeps sessions hot; a cancel that
        # poisoned the pool would rebuild it per request).
        gate = threading.Event()

        def blocking(values, slope):
            assert gate.wait(timeout=60)
            return 0.5

        with ShapeSearch(_table(groups=6), workers=2) as session:
            session.engine.chunk_size = 1  # one shard per group
            warm = session.prepare("[p=up]", z="z", x="x", y="y")
            warm.run(k=2)  # builds the pool
            pools_before = dict(session.engine._pools)
            assert pools_before
            with temporary_udp("storm_gate", blocking):
                prepared = session.prepare(
                    "[p=udp:storm_gate]", z="z", x="x", y="y"
                )
                futures = [prepared.submit(k=2) for _ in range(6)]
                doomed = futures[1::2]
                for future in doomed:
                    future.cancel()
                gate.set()
                for future in futures:
                    if future in doomed:
                        # Every shard was gate-blocked when the cancel
                        # landed, so the cancel always wins — whether
                        # the future resolved before the gate opened
                        # (never started) or at the next checkpoint.
                        with pytest.raises(SearchCancelled):
                            future.result(timeout=120)
                        assert future.cancelled()
                    else:
                        assert len(future.result(timeout=120)) > 0
            pools_after = dict(session.engine._pools)
            assert set(pools_after) == set(pools_before)
            for key, pool in pools_before.items():
                assert pools_after[key] is pool
            # The surviving pool still serves: rerun byte-identical to a
            # pre-storm run of the same plain query.
            assert _sig(warm.run(k=2)) == _sig(warm.run(k=2))
