# Fixture: violates the REP071 mapping-lifecycle rule.  Parsed, never run.
import numpy as np

from somewhere import _close_block  # noqa — fixtures are never imported


def leak_unbound(path, values_len):
    np.memmap(path, dtype=np.float64, mode="r", shape=(values_len,))  # REP071


def leak_no_owner(path, values_len, expected_sha1):
    block = np.memmap(path, dtype=np.float64, mode="r", shape=(values_len,))  # REP071
    digest = compute_sha1(block)
    return digest == expected_sha1  # mapping never closed, wrapped, or returned


def raise_after_open(path, values_len, manifest):
    block = np.memmap(path, dtype=np.float64, mode="r", shape=(values_len,))
    if manifest["count"] < 0:
        raise ValueError("negative count")  # REP071: leaks the open mapping
    return block


def raise_in_unrelated_guard(path, values_len):
    block = np.memmap(path, dtype=np.float64, mode="r", shape=(values_len,))
    try:
        validate(block)
    except KeyError:
        pass  # handler does not close the mapping
    if block.shape[0] != values_len:
        raise RuntimeError("shape drift")  # REP071: still unguarded
    return block
