# Fixture: the conforming twin of artifacts_bad.py — the open/verify/own
# idioms the REP071 rule must accept.
import numpy as np

from somewhere import ShapeIndex, _close_block  # noqa — never imported


def open_block(path, values_len):
    if values_len == 0:
        return np.zeros(0, dtype=np.float64)
    return np.memmap(path, dtype=np.float64, mode="r", shape=(values_len,))


def verify_then_serve(path, values_len, layout, expected_sha1):
    block = np.memmap(path, dtype=np.float64, mode="r", shape=(values_len,))
    if compute_sha1(block) != expected_sha1:
        _close_block(block)  # verification miss releases the mapping
        return None
    return ShapeIndex.from_packed(block, layout)  # index owns the views


def open_guarded(path, values_len, manifest):
    block = np.memmap(path, dtype=np.float64, mode="r", shape=(values_len,))
    try:
        if manifest["count"] < 0:
            raise ValueError("negative count")
    except BaseException:
        _close_block(block)  # the raise window is guarded
        raise
    return block


def close_explicitly(path, values_len):
    block = np.memmap(path, dtype=np.float64, mode="r", shape=(values_len,))
    total = float(block.sum())
    block._mmap.close()
    return total
