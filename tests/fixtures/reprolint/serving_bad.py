"""REP081 bad fixture: blocking calls inside serving coroutines."""

import time
from pathlib import Path


async def handle_search(engine, request):
    time.sleep(0.1)  # REP081: stalls the event loop
    return engine.run(request.table, request.params, request.query)  # REP081


async def handle_tables(request):
    with open("/tmp/upload.json", "rb") as handle:  # REP081: sync file I/O
        payload = handle.read()
    return payload


async def handle_artifact(path):
    return Path(path).read_text("utf-8")  # REP081: sync file I/O


async def handle_pool(worker_pool, shards):
    return worker_pool.run(shards)  # REP081: blocking pool entry point


async def handle_bare_sleep():
    from time import sleep

    sleep(1)  # REP081: bare sleep is still time.sleep
