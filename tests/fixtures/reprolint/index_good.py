# Fixture: the conforming twin of index_bad.py.
import numpy as np  # noqa — never imported


def survives_floor(upper_bounds, floor):
    """The seam itself may compare — this is the audited inequality."""
    return np.greater_equal(upper_bounds, floor)


def prune_candidates(bounds, floor):
    """Every discard decision is the seam's verdict, never restated."""
    kept = []
    for upper in bounds:
        if not survives_floor(upper, floor):
            continue
        kept.append(upper)
    return kept


def vectorized_prune(bounds, topk_floor):
    keep = survives_floor(bounds, topk_floor)
    return bounds[keep]


def floor_bookkeeping(scores, k):
    """Touching the floor without comparing it is fine."""
    topk_floor = sorted(scores, reverse=True)[k - 1]
    return max(topk_floor, -1.0)
