# Fixture: the conforming twin of deprecation_bad.py.


def run_all(engine, queries):
    return [engine.run(query) for query in queries]  # the serving-era API


def batched(engine, table, queries):
    return engine.prepare(table, queries).submit()


class Engine:
    def execute(self, table, query):
        # A shim's own delegating body is the shim working, not a
        # violation — the enclosing function shares the shim's name.
        return self._delegate.execute(table, query)
