# Fixture: violates every REP01x determinism rule.  Never imported or
# executed — parsed by tests/test_reprolint.py through the fixture
# harness, and excluded from normal reprolint/ruff discovery.
import time  # REP014: wall clock in engine code

import numpy as np

REGISTRY = set()


def now():
    return time.monotonic()


def emit(out):
    for item in REGISTRY:  # REP011: hash-ordered iteration
        out.append(item)


def collect(items):
    return [value for value in set(items)]  # REP011 (comprehension form)


def merge_results(items):
    return sorted(items)  # REP013: keyless sort on a merge path


def rank(scores):
    return np.argsort(scores)  # REP012: unstable sort kind


def jitter(n):
    return np.random.normal(size=n)  # REP014: RNG in engine code
