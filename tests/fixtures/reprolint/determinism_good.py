# Fixture: the conforming twin of determinism_bad.py — every pattern
# here must stay silent under the REP01x rules.
import numpy as np

REGISTRY = set()


def emit(out):
    for item in sorted(REGISTRY):  # deterministic order imposed
        out.append(item)


def collect(items):
    return [value for value in sorted(set(items))]


def merge_results(items):
    return sorted(items, key=lambda r: (-r[0], r[1]))  # explicit total order


def rank(scores):
    return np.argsort(scores, kind="stable")


def plain_list_sort(values):
    values.sort()  # list.sort() is stable and not on a merge path
    return values
