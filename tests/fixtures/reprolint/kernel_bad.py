# Fixture: violates both REP05x kernel-parity rules.  Parsed, never run.
from somewhere import CompiledUnit, SlopeUnit  # noqa — never imported


class MatrixOnlyUnit(CompiledUnit):
    """REP051: overrides the matrix kernel with no scalar twin."""

    def score_matrix(self, trendline):
        return trendline


class UndeclaredSlopeUnit(SlopeUnit):
    """REP052: consumes shared slopes without declaring slope_based."""

    def score_pairs(self, stats, starts, ends):
        return stats

    def score_matrix_from_slopes(self, slopes, lengths):
        return slopes
