# Fixture: violates REP041 (internal calls to deprecated shims).


def run_all(engine, queries):
    return [engine.search(query) for query in queries]  # REP041


def batched(engine, table, queries):
    return engine.execute_many(table, queries)  # REP041
