# Fixture: violates the REP061 floor-seam rule.  Parsed, never run.
import numpy as np  # noqa — never imported


def prune_candidates(bounds, floor):
    """Operator-form floor comparisons outside the seam: two findings."""
    kept = []
    for upper in bounds:
        if upper < floor:  # finding: inline strict discard
            continue
        kept.append(upper)
    return [value for value in kept if value >= floor]  # finding: restated


def vectorized_prune(bounds, topk_floor):
    """Ufunc-form bypass: np.greater_equal spells the same inequality."""
    return bounds[np.greater_equal(bounds, topk_floor)]  # finding
