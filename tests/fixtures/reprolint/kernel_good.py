# Fixture: the conforming twin of kernel_bad.py.
from somewhere import CompiledUnit, SlopeUnit  # noqa — never imported


class PairedUnit(CompiledUnit):
    """Matrix override with its scalar twin in the same class body."""

    def score_pairs(self, stats, starts, ends):
        return stats

    def score_matrix(self, trendline):
        return trendline


class DeclaredSlopeUnit(SlopeUnit):
    """Slope consumer that declares itself to the wavefront."""

    slope_based = True

    def score_pairs(self, stats, starts, ends):
        return stats

    def score_matrix_from_slopes(self, slopes, lengths):
        return slopes


class ScalarOnlyUnit(CompiledUnit):
    """No matrix override at all: nothing for REP05x to demand."""

    def score(self, trendline, start, end):
        return 0.0
