# Fixture: the conforming twin of cancellation_bad.py.
from concurrent.futures import ThreadPoolExecutor

from somewhere import _run_tasks, dispatch_score  # noqa — never imported


class SteadyScore:
    """Routes through the seam: control checkpoint + dispatch helper."""

    def run(self, ctx, shards):
        ctx.control.begin(len(shards))
        return dispatch_score(ctx.pool, shards)


class SequentialishScore:
    """The single-shard path: checkpoints control directly."""

    def run(self, ctx, shards):
        results = []
        for shard in shards:
            ctx.control.raise_if_cancelled()
            results.append(shard.score())
        return results


def dispatch_rows(pool, tasks):
    return _run_tasks(pool, tasks)  # the one funnel


class WorkerPool:
    """The single sanctioned executor construction site."""

    def _ensure(self):
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=2)
        return self._executor
