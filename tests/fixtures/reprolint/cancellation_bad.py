# Fixture: violates every REP03x cancellation-seam rule.  Parsed, never run.
from concurrent.futures import ThreadPoolExecutor

from somewhere import score_shard  # noqa — fixtures are never imported


class BrokenScore:
    """A Score operator whose shard loop is invisible to cancel."""

    def run(self, ctx, shards):  # REP031: no dispatch_*, no control
        results = []
        for shard in shards:
            results.append(score_shard(shard))
        return results


def dispatch_rows(pool, tasks):  # REP032: bypasses the _run_tasks funnel
    executor = ThreadPoolExecutor(max_workers=2)  # REP033: raw pool
    return [executor.submit(task) for task in tasks]
