"""REP081 good fixture: the conforming shapes of serving coroutines."""

import asyncio
import functools
import time


def _publish_sync(registry, body):
    # Sync helper: file I/O and blocking work are legal here — it runs
    # on the executor, not the event loop.
    with open(body["path"], "rb") as handle:
        payload = handle.read()
    return registry.publish(payload)


async def handle_tables(registry, request):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, _publish_sync, registry, request.json())


async def handle_search(prepared, k):
    loop = asyncio.get_running_loop()
    future = await loop.run_in_executor(None, functools.partial(prepared.submit, k=k))
    event = asyncio.Event()
    future.add_done_callback(lambda _f: loop.call_soon_threadsafe(event.set))
    await event.wait()
    # .result() after the bridge observed resolution cannot block, and
    # is deliberately outside REP081's reach.
    return future.result(timeout=0)


async def handle_backoff():
    await asyncio.sleep(0.1)


async def handle_latency(stats):
    started = time.monotonic()  # reading a clock is fine; sleeping is not
    await asyncio.sleep(0)
    stats.record(time.monotonic() - started)


def blocking_outside_coroutines(engine, table, params, query):
    # Blocking run is the *synchronous* API's entry point; only inside
    # async def is it a finding.
    time.sleep(0)
    return engine.run(table, params, query)


async def nested_sync_helper_is_exempt(items):
    def transform(item):
        # nearest enclosing function is sync: executor-destined code.
        with open(item, "rb") as handle:
            return handle.read()

    loop = asyncio.get_running_loop()
    return [await loop.run_in_executor(None, transform, item) for item in items]
