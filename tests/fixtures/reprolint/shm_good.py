# Fixture: the conforming twin of shm_bad.py — the acquire/pin idioms
# the REP02x rules must accept.
import weakref
from multiprocessing import shared_memory

from somewhere import _Attachment, _attach_segment  # noqa — never imported


def publish(payload):
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    return segment  # ownership transfers to the caller


def read_copy(name, nbytes):
    segment = _attach_segment(name)
    try:
        return bytes(segment.buf[:nbytes])  # copy severs the view
    finally:
        segment.close()


def attach_guarded(name, expected):
    segment = _attach_segment(name)
    try:
        if segment.size != expected:
            raise ValueError("size mismatch")
    except BaseException:
        segment.close()  # the raise window is guarded
        raise
    return segment


def pin(value, name):
    segment = _attach_segment(name)
    return _Attachment(value, segment)  # attachment owns the mapping


def finalized(owner, name):
    segment = _attach_segment(name)
    weakref.finalize(owner, segment.close)
    return owner
