# Fixture: violates every REP02x shm-lifecycle rule.  Parsed, never run.
from multiprocessing import shared_memory

from somewhere import _attach_segment  # noqa — fixtures are never imported


def leak_unbound():
    shared_memory.SharedMemory(create=True, size=8)  # REP021: nothing owns it


def leak_no_owner(payload):
    segment = shared_memory.SharedMemory(create=True, size=8)  # REP021
    copied = bytes(segment.buf[: len(payload)])
    return copied  # segment never closed, stored, or returned


def escape_buf(segment):
    return segment.buf  # REP022: raw memoryview outlives the pin


class Holder:
    def pin(self, segment):
        self._view = segment.buf  # REP022: stored view, unpinned segment


def raise_after_attach(name, expected):
    segment = _attach_segment(name)
    if segment.size != expected:
        raise ValueError("size mismatch")  # REP023: leaks the mapping
    return segment
