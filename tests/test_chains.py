"""Tests for query flattening into weighted alternative chains."""

import pytest

from repro.algebra import builder as q
from repro.engine.chains import compile_query
from repro.engine.units import (
    AndUnit,
    NestedUnit,
    PositionUnit,
    QuantifierUnit,
    SketchUnit,
    SlopeUnit,
    UdpUnit,
    WindowUnit,
)
from repro.errors import ExecutionError, ShapeQueryValidationError


class TestFlattening:
    def test_single_segment(self):
        compiled = compile_query(q.up())
        assert len(compiled.chains) == 1
        assert compiled.chains[0].k == 1
        assert compiled.chains[0].units[0].weight == 1.0

    def test_flat_concat_weights(self):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        weights = [cu.weight for cu in compiled.chains[0].units]
        assert weights == [pytest.approx(1 / 3)] * 3

    def test_paper_nested_example(self):
        """a ⊗ (b ⊕ (c ⊗ d)) → chains [a½ b½] and [a½ c¼ d¼] (Figure 7)."""
        tree = q.concat(q.up(), q.or_(q.flat(), q.concat(q.down(), q.up())))
        compiled = compile_query(tree)
        assert len(compiled.chains) == 2
        first, second = compiled.chains
        assert [cu.weight for cu in first.units] == [pytest.approx(0.5)] * 2
        assert [cu.weight for cu in second.units] == [
            pytest.approx(0.5),
            pytest.approx(0.25),
            pytest.approx(0.25),
        ]

    def test_chain_weights_sum_to_one(self):
        tree = q.concat(
            q.up(),
            q.or_(q.flat(), q.concat(q.down(), q.up())),
            q.or_(q.up(), q.down()),
        )
        compiled = compile_query(tree)
        assert len(compiled.chains) == 4
        for chain in compiled.chains:
            assert sum(cu.weight for cu in chain.units) == pytest.approx(1.0)

    def test_or_of_concats(self):
        tree = q.or_(q.concat(q.up(), q.down()), q.concat(q.down(), q.up(), q.flat()))
        compiled = compile_query(tree)
        assert sorted(chain.k for chain in compiled.chains) == [2, 3]

    def test_and_becomes_single_unit(self):
        tree = q.and_(q.repeated(q.up(), low=2), q.repeated(q.down(), high=1))
        compiled = compile_query(tree)
        assert compiled.chains[0].k == 1
        assert isinstance(compiled.chains[0].units[0].unit, AndUnit)

    def test_segment_indices_are_global(self):
        tree = q.concat(q.up(), q.or_(q.flat(), q.down()), q.position(index=0, comparison="<"))
        compiled = compile_query(tree)
        for chain in compiled.chains:
            last = chain.units[-1].unit
            assert isinstance(last, PositionUnit)
            assert last.reference_index == 0

    def test_alternative_explosion_guarded(self):
        choice = q.or_(q.up(), q.down())
        tree = q.concat(*[choice for _ in range(8)])  # 2^8 = 256 alternatives
        with pytest.raises(ExecutionError):
            compile_query(tree)

    def test_opposite_is_normalized_away(self):
        compiled = compile_query(q.opposite(q.up()))
        unit = compiled.chains[0].units[0].unit
        assert isinstance(unit, SlopeUnit)
        assert unit.kind == "down"

    def test_validation_runs(self):
        bad = q.up(x_start=10, x_end=2)
        with pytest.raises(ShapeQueryValidationError):
            compile_query(bad)


class TestSegmentCompilation:
    def test_slope_with_sharp_modifier(self):
        compiled = compile_query(q.up(sharp=True))
        unit = compiled.chains[0].units[0].unit
        assert unit.kind == "slope"
        assert unit.theta == 75.0

    def test_quantifier_unit(self):
        compiled = compile_query(q.repeated(q.up(), low=2))
        assert isinstance(compiled.chains[0].units[0].unit, QuantifierUnit)

    def test_sketch_unit(self):
        compiled = compile_query(q.sketch([(0, 1), (5, 3)]))
        assert isinstance(compiled.chains[0].units[0].unit, SketchUnit)

    def test_udp_unit(self):
        compiled = compile_query(q.udp("spike"))
        assert isinstance(compiled.chains[0].units[0].unit, UdpUnit)

    def test_window_wraps_base(self):
        compiled = compile_query(q.up(window=5))
        unit = compiled.chains[0].units[0].unit
        assert isinstance(unit, WindowUnit)
        assert isinstance(unit.base, SlopeUnit)

    def test_nested_unit(self):
        compiled = compile_query(q.nested(q.concat(q.up(), q.down())))
        unit = compiled.chains[0].units[0].unit
        assert isinstance(unit, NestedUnit)
        assert len(unit.compiled_query.chains) == 1

    def test_bare_location_with_y_is_line_unit(self):
        from repro.engine.units import LineUnit

        compiled = compile_query(q.segment(x_start=2, x_end=10, y_start=10, y_end=100))
        assert isinstance(compiled.chains[0].units[0].unit, LineUnit)

    def test_factor_modifier_on_up(self):
        from repro.algebra.primitives import Modifier, Pattern
        from repro.algebra.nodes import ShapeSegment

        seg = ShapeSegment(pattern=Pattern(kind="up"), modifier=Modifier(comparison=">", factor=2.0))
        compiled = compile_query(seg)
        unit = compiled.chains[0].units[0].unit
        assert unit.kind == "slope"
        assert unit.theta == pytest.approx(63.434948822)


class TestCompiledQueryProperties:
    def test_k_is_max_chain_length(self):
        tree = q.or_(q.up(), q.concat(q.down(), q.up(), q.flat()))
        assert compile_query(tree).k == 3

    def test_has_position(self):
        assert compile_query(
            q.concat(q.up(), q.position(index=0, comparison="<"))
        ).has_position
        assert not compile_query(q.up()).has_position

    def test_pinned_units_listing(self):
        tree = q.concat(q.up(x_start=0, x_end=5), q.down())
        compiled = compile_query(tree)
        assert len(compiled.pinned_units()) == 1
