"""Tests for the reprolint static analyzer (tools/reprolint).

Three layers: fixture-driven rule tests (each rule fires on its bad
fixture and stays silent on the good twin), suppression machinery
(inline disables, the baseline store, staleness and justification
enforcement), and driver smoke tests — including the acceptance
criterion itself: ``python -m tools.reprolint src tests benchmarks``
exits 0 on this tree.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint.baseline import Baseline, BaselineError, entries_for
from tools.reprolint.driver import _DEFAULT_BASELINE, discover, main, run_paths
from tools.reprolint.rules import ALL_RULES, RULES_BY_ID
from tools.reprolint.testing import check_fixture, run_rule

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "reprolint"

#: (rule id, fixture family, minimum findings expected on the bad twin).
CASES = [
    ("REP011", "determinism", 2),
    ("REP012", "determinism", 1),
    ("REP013", "determinism", 1),
    ("REP014", "determinism", 2),
    ("REP021", "shm", 2),
    ("REP022", "shm", 2),
    ("REP023", "shm", 1),
    ("REP031", "cancellation", 1),
    ("REP032", "cancellation", 1),
    ("REP033", "cancellation", 1),
    ("REP041", "deprecation", 2),
    ("REP051", "kernel", 1),
    ("REP052", "kernel", 1),
    ("REP061", "index", 3),
    ("REP071", "artifacts", 4),
    ("REP081", "serving", 5),
]


def _unscoped(rule_id):
    """A fresh instance of the rule with its path scope removed."""
    rule = type(RULES_BY_ID[rule_id])()
    rule.scope = ()
    return rule


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id,family,minimum", CASES)
    def test_fires_on_bad_fixture(self, rule_id, family, minimum):
        findings = check_fixture(
            RULES_BY_ID[rule_id], FIXTURES / "{}_bad.py".format(family)
        )
        mine = [finding for finding in findings if finding.rule == rule_id]
        assert len(mine) >= minimum
        for finding in mine:
            assert finding.line > 0
            assert finding.message
            assert finding.rationale  # every finding explains itself
            assert finding.snippet  # the baseline key is populated

    @pytest.mark.parametrize("rule_id,family,minimum", CASES)
    def test_silent_on_good_fixture(self, rule_id, family, minimum):
        findings = check_fixture(
            RULES_BY_ID[rule_id], FIXTURES / "{}_good.py".format(family)
        )
        assert [finding for finding in findings if finding.rule == rule_id] == []

    def test_rule_catalog_shape(self):
        ids = [rule.id for rule in ALL_RULES]
        assert len(ids) == len(set(ids))
        families = {rule_id[:5] for rule_id in ids}
        assert {"REP01", "REP02", "REP03", "REP04", "REP05"} <= families
        for rule in ALL_RULES:
            assert rule.rationale  # no rule without a written why

    def test_scope_filters_paths(self):
        determinism = RULES_BY_ID["REP011"]
        assert determinism.applies("src/repro/engine/pipeline.py")
        assert not determinism.applies("benchmarks/bench_engine.py")
        assert not determinism.applies("src/repro/data/table.py")
        assert RULES_BY_ID["REP033"].applies("src/repro/serve.py")
        assert RULES_BY_ID["REP051"].applies("anything/anywhere.py")
        assert RULES_BY_ID["REP081"].applies("src/repro/serving/app.py")
        assert not RULES_BY_ID["REP081"].applies("src/repro/engine/executor.py")
        assert not RULES_BY_ID["REP081"].applies("tests/test_serving.py")


class TestInlineSuppression:
    def _run(self, tmp_path, source, rule_id="REP011"):
        target = tmp_path / "code.py"
        target.write_text(source)
        return run_paths(
            [str(target)],
            root=tmp_path,
            baseline_path=str(tmp_path / "baseline.json"),
            rules=[_unscoped(rule_id)],
        )

    def test_same_line_disable_with_rationale(self, tmp_path):
        report, _ = self._run(
            tmp_path,
            "OUT = []\n"
            "for item in {1, 2, 3}:  # reprolint: disable=REP011 -- order-free\n"
            "    OUT.append(item)\n",
        )
        assert report.findings == []
        assert len(report.suppressed) == 1
        finding, how = report.suppressed[0]
        assert finding.rule == "REP011"
        assert how == "inline: order-free"
        assert report.clean

    def test_preceding_comment_line_disable(self, tmp_path):
        report, _ = self._run(
            tmp_path,
            "OUT = []\n"
            "# reprolint: disable=REP011 -- order-free\n"
            "for item in {1, 2, 3}:\n"
            "    OUT.append(item)\n",
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_bare_disable_is_an_error_and_does_not_suppress(self, tmp_path):
        report, _ = self._run(
            tmp_path,
            "OUT = []\n"
            "for item in {1, 2, 3}:  # reprolint: disable=REP011\n"
            "    OUT.append(item)\n",
        )
        assert len(report.findings) == 1  # still reported
        assert any("rationale" in error for error in report.errors)
        assert not report.clean

    def test_disable_for_other_rule_does_not_apply(self, tmp_path):
        report, _ = self._run(
            tmp_path,
            "OUT = []\n"
            "for item in {1, 2, 3}:  # reprolint: disable=REP099 -- wrong rule\n"
            "    OUT.append(item)\n",
        )
        assert len(report.findings) == 1
        assert report.suppressed == []


_BAD_SOURCE = "OUT = []\nfor item in {1, 2, 3}:\n    OUT.append(item)\n"
_GOOD_SOURCE = "OUT = []\nfor item in (1, 2, 3):\n    OUT.append(item)\n"


class TestBaseline:
    def _paths(self, tmp_path, source=_BAD_SOURCE):
        target = tmp_path / "code.py"
        target.write_text(source)
        return target, tmp_path / "baseline.json"

    def test_round_trip_suppresses_and_stays_clean(self, tmp_path):
        target, baseline_path = self._paths(tmp_path)
        report, _ = run_paths(
            [str(target)],
            root=tmp_path,
            baseline_path=str(baseline_path),
            rules=[_unscoped("REP011")],
        )
        assert len(report.findings) == 1

        entries = entries_for(report.findings, justification="reviewed: fixture")
        Baseline(entries, path=str(baseline_path)).save()

        report, _ = run_paths(
            [str(target)],
            root=tmp_path,
            baseline_path=str(baseline_path),
            rules=[_unscoped("REP011")],
        )
        assert report.clean
        assert [how for _, how in report.suppressed] == ["baseline"]

    def test_stale_entry_is_an_error_once_code_is_fixed(self, tmp_path):
        target, baseline_path = self._paths(tmp_path)
        report, _ = run_paths(
            [str(target)],
            root=tmp_path,
            baseline_path=str(baseline_path),
            rules=[_unscoped("REP011")],
        )
        entries = entries_for(report.findings, justification="reviewed: fixture")
        Baseline(entries, path=str(baseline_path)).save()

        target.write_text(_GOOD_SOURCE)  # the finding is fixed for real
        report, _ = run_paths(
            [str(target)],
            root=tmp_path,
            baseline_path=str(baseline_path),
            rules=[_unscoped("REP011")],
        )
        assert any("stale" in error for error in report.errors)
        assert not report.clean

    def test_missing_justification_is_an_error(self, tmp_path):
        target, baseline_path = self._paths(tmp_path)
        report, _ = run_paths(
            [str(target)],
            root=tmp_path,
            baseline_path=str(baseline_path),
            rules=[_unscoped("REP011")],
        )
        entries = entries_for(report.findings)  # justification left empty
        Baseline(entries, path=str(baseline_path)).save()

        report, _ = run_paths(
            [str(target)],
            root=tmp_path,
            baseline_path=str(baseline_path),
            rules=[_unscoped("REP011")],
        )
        assert any("justification" in error for error in report.errors)
        assert not report.clean  # a baseline is reviewed or it is rejected

    def test_malformed_baseline_raises(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(baseline_path)
        baseline_path.write_text('[{"rule": "REP011"}]')  # missing key fields
        with pytest.raises(BaselineError):
            Baseline.load(baseline_path)

    def test_shipped_baseline_is_fully_justified(self):
        baseline = Baseline.load(_DEFAULT_BASELINE)
        assert baseline.entries  # the reviewed grandfather list exists
        assert baseline.justification_errors() == []
        for entry in baseline.entries:
            assert len(entry["justification"]) > 40  # written, not a stub


class TestDriver:
    def test_discovery_skips_fixture_tree(self):
        files = [path.as_posix() for path in discover(["tests"], REPO)]
        assert files  # real tests are found
        assert not any("fixtures/reprolint" in path for path in files)

    def test_explicit_fixture_file_is_scanned(self):
        target = FIXTURES / "shm_bad.py"
        files = discover([str(target)], REPO)
        assert files == [target]

    def test_unknown_path_is_a_usage_error(self):
        assert main(["does/not/exist"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules", "unused"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_repo_tree_is_clean(self, monkeypatch, tmp_path, capsys):
        """The acceptance criterion, in-process, plus the JSON report."""
        monkeypatch.chdir(REPO)
        report_path = tmp_path / "findings.json"
        assert main(["src", "tests", "benchmarks", "--report", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["files_checked"] > 50
        suppressed_rules = {entry["rule"] for entry in payload["suppressed"]}
        assert suppressed_rules  # the baseline is exercised, not bypassed

    def test_module_entry_point_smoke(self):
        """`python -m tools.reprolint src tests benchmarks` exits 0."""
        result = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "src", "tests", "benchmarks"],
            cwd=str(REPO),
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 finding(s)" in result.stdout

    def test_findings_exit_code_and_rendering(self, monkeypatch, tmp_path, capsys):
        target = tmp_path / "code.py"
        target.write_text(
            "REGISTRY = set()\n"
            "def merge_all(items):\n"
            "    return sorted(items)\n"
        )
        monkeypatch.chdir(tmp_path)
        # REP013 is scoped to engine paths; place the file accordingly.
        engine = tmp_path / "src" / "repro" / "engine"
        engine.mkdir(parents=True)
        target.replace(engine / "merging.py")
        rc = main(["src", "--baseline", str(tmp_path / "baseline.json")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP013" in out
        assert "why:" in out  # rationale is printed with the finding

    def test_syntax_error_is_reported_not_crashed(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def oops(:\n")
        report, _ = run_paths(
            [str(target)],
            root=tmp_path,
            baseline_path=str(tmp_path / "baseline.json"),
        )
        assert any("cannot analyze" in error for error in report.errors)
        assert not report.clean


class TestHarness:
    def test_run_rule_on_source_string(self):
        findings = run_rule(
            _unscoped("REP012"),
            "import numpy as np\n\ndef rank(x):\n    return np.argsort(x)\n",
        )
        assert [finding.rule for finding in findings] == ["REP012"]

    def test_context_names_the_enclosing_scope(self):
        findings = run_rule(
            _unscoped("REP041"),
            "class Runner:\n"
            "    def go(self, engine, query):\n"
            "        return engine.search(query)\n",
        )
        assert [finding.context for finding in findings] == ["Runner.go"]
