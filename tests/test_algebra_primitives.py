"""Unit tests for the shape primitives (paper §3.1, Table 1)."""

import pytest

from repro.algebra.primitives import (
    ANYWHERE,
    Iterator,
    Location,
    Modifier,
    Pattern,
    PositionRef,
    Quantifier,
    Sketch,
)
from repro.errors import ShapeQueryValidationError


class TestLocation:
    def test_empty_location_is_fuzzy(self):
        assert ANYWHERE.is_empty
        assert ANYWHERE.is_fuzzy
        assert not ANYWHERE.is_x_pinned

    def test_pinned_location(self):
        loc = Location(x_start=2, x_end=10)
        assert loc.is_x_pinned
        assert not loc.is_fuzzy
        assert loc.x_span() == (2, 10)

    def test_partial_pin_is_fuzzy(self):
        assert Location(x_start=2).is_fuzzy
        assert Location(x_end=10).is_fuzzy
        assert Location(x_start=2).x_span() is None

    def test_y_only_location_not_empty(self):
        loc = Location(y_start=10, y_end=100)
        assert not loc.is_empty
        assert loc.is_fuzzy

    def test_iterator_conflicts_with_x_pins(self):
        with pytest.raises(ShapeQueryValidationError):
            Location(x_start=1, iterator=Iterator(3))

    def test_iterator_width_must_be_positive(self):
        with pytest.raises(ShapeQueryValidationError):
            Iterator(0)
        with pytest.raises(ShapeQueryValidationError):
            Iterator(-2)


class TestQuantifier:
    def test_exactly(self):
        q = Quantifier(low=2, high=2)
        assert q.accepts(2)
        assert not q.accepts(1)
        assert not q.accepts(3)
        assert q.required == 2

    def test_at_least(self):
        q = Quantifier(low=2)
        assert q.accepts(2) and q.accepts(7)
        assert not q.accepts(1)

    def test_at_most(self):
        q = Quantifier(high=2)
        assert q.accepts(0) and q.accepts(2)
        assert not q.accepts(3)
        assert q.required == 0

    def test_between(self):
        q = Quantifier(low=2, high=5)
        assert q.accepts(3)
        assert not q.accepts(6)

    def test_requires_a_bound(self):
        with pytest.raises(ShapeQueryValidationError):
            Quantifier()

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ShapeQueryValidationError):
            Quantifier(low=5, high=2)

    def test_rejects_negative_bounds(self):
        with pytest.raises(ShapeQueryValidationError):
            Quantifier(low=-1)


class TestModifier:
    def test_comparison_and_quantifier_are_exclusive(self):
        with pytest.raises(ShapeQueryValidationError):
            Modifier()
        with pytest.raises(ShapeQueryValidationError):
            Modifier(comparison=">", quantifier=Quantifier(low=1))

    def test_factory_helpers(self):
        assert Modifier.exactly(2).quantifier == Quantifier(low=2, high=2)
        assert Modifier.at_least(3).quantifier == Quantifier(low=3)
        assert Modifier.at_most(1).quantifier == Quantifier(high=1)
        assert Modifier.between(1, 4).quantifier == Quantifier(low=1, high=4)

    def test_unknown_comparison_rejected(self):
        with pytest.raises(ShapeQueryValidationError):
            Modifier(comparison="~=")

    def test_factor_only_on_single_comparisons(self):
        Modifier(comparison=">", factor=2.0)
        with pytest.raises(ShapeQueryValidationError):
            Modifier(comparison=">>", factor=2.0)
        with pytest.raises(ShapeQueryValidationError):
            Modifier(comparison=">", factor=-1.0)


class TestPattern:
    def test_slope_requires_theta_in_range(self):
        Pattern(kind="slope", theta=45)
        with pytest.raises(ShapeQueryValidationError):
            Pattern(kind="slope")
        with pytest.raises(ShapeQueryValidationError):
            Pattern(kind="slope", theta=90)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ShapeQueryValidationError):
            Pattern(kind="wiggly")

    def test_negation_mirrors_directional_patterns(self):
        assert Pattern(kind="up").negated() == Pattern(kind="down")
        assert Pattern(kind="down").negated() == Pattern(kind="up")
        assert Pattern(kind="slope", theta=30).negated() == Pattern(kind="slope", theta=-30)
        assert Pattern(kind="flat").negated() == Pattern(kind="flat")

    def test_position_requires_reference(self):
        with pytest.raises(ShapeQueryValidationError):
            Pattern(kind="position")
        Pattern(kind="position", reference=PositionRef(index=0))


class TestPositionRef:
    def test_absolute_and_relative_are_exclusive(self):
        with pytest.raises(ShapeQueryValidationError):
            PositionRef()
        with pytest.raises(ShapeQueryValidationError):
            PositionRef(index=0, relative=1)

    def test_resolution(self):
        assert PositionRef(index=3).resolve(7) == 3
        assert PositionRef(relative=-1).resolve(2) == 1
        assert PositionRef(relative=1).resolve(2) == 3

    def test_relative_must_be_unit(self):
        with pytest.raises(ShapeQueryValidationError):
            PositionRef(relative=2)


class TestSketch:
    def test_needs_two_points(self):
        with pytest.raises(ShapeQueryValidationError):
            Sketch(points=((1, 2),))

    def test_x_must_be_non_decreasing(self):
        with pytest.raises(ShapeQueryValidationError):
            Sketch(points=((2, 1), (1, 2)))

    def test_accessors(self):
        sketch = Sketch(points=((0, 1), (1, 3), (2, 2)))
        assert sketch.xs() == [0, 1, 2]
        assert sketch.ys() == [1, 3, 2]
        assert len(sketch) == 3
