"""Tests for the DTW / Euclidean / VQS baselines (§7.3, §9)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra import builder as q
from repro.baselines.dtw import (
    chain_prototype,
    dtw_distance,
    dtw_query_distance,
    query_prototypes,
    rank_by_dtw,
)
from repro.baselines.euclidean import euclidean_distance, rank_by_euclidean
from repro.baselines.vqs import VisualQuerySystem, smooth
from repro.engine.chains import compile_query
from repro.errors import ExecutionError


series = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=4, max_size=24
)


class TestDtw:
    def test_identity_is_zero(self):
        values = np.sin(np.linspace(0, 5, 30))
        assert dtw_distance(values, values) == pytest.approx(0.0, abs=1e-9)

    @given(series, series)
    def test_symmetry(self, a, b):
        forward = dtw_distance(np.array(a), np.array(b))
        backward = dtw_distance(np.array(b), np.array(a))
        assert forward == pytest.approx(backward, rel=1e-6, abs=1e-6)

    @given(series, series)
    def test_non_negative(self, a, b):
        assert dtw_distance(np.array(a), np.array(b)) >= 0

    def test_band_never_below_unbanded(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(0, 1, 40), rng.normal(0, 1, 40)
        unbanded = dtw_distance(a, b)
        banded = dtw_distance(a, b, band=3)
        assert banded >= unbanded - 1e-9

    def test_phase_shift_tolerated_vs_euclidean(self):
        """DTW's raison d'être: aligned shapes beat point-wise comparison."""
        t = np.linspace(0, 4 * np.pi, 80)
        a = np.sin(t)
        b = np.sin(t + 0.6)
        assert dtw_distance(a, b) < euclidean_distance(a, b) * np.sqrt(len(a))

    def test_different_lengths_same_shape_stay_close(self):
        a = np.linspace(0, 1, 30)
        b = np.linspace(0, 1, 45)
        opposite = np.linspace(1, 0, 45)
        assert dtw_distance(a, b) < 0.3 * dtw_distance(a, opposite)

    def test_empty_series(self):
        assert dtw_distance(np.array([]), np.array([1.0])) == np.inf


class TestPrototypes:
    def test_up_down_shape(self):
        compiled = compile_query(q.concat(q.up(), q.down()))
        prototype = chain_prototype(compiled.chains[0], 40)
        assert len(prototype) == 40
        peak = int(np.argmax(prototype))
        assert 15 <= peak <= 25

    def test_one_prototype_per_chain(self):
        compiled = compile_query(q.up() >> (q.flat() | q.down()))
        assert len(query_prototypes(compiled, 30)) == 2

    def test_query_distance_prefers_matching_shape(self, up_down_up, rising_line):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        assert dtw_query_distance(up_down_up, compiled) < dtw_query_distance(
            rising_line, compiled
        )

    def test_rank_by_dtw(self, up_down_up, rising_line, flat_line):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        ranked = rank_by_dtw([rising_line, flat_line, up_down_up], compiled, k=3)
        assert ranked[0][0].key == "udu"


class TestEuclidean:
    def test_identity(self):
        values = np.linspace(0, 1, 20)
        assert euclidean_distance(values, values) == pytest.approx(0.0)

    def test_scale_invariance_via_znorm(self):
        a = np.linspace(0, 1, 20)
        assert euclidean_distance(a, a * 100 + 7) == pytest.approx(0.0, abs=1e-9)

    def test_resampling(self):
        a = np.linspace(0, 1, 20)
        b = np.linspace(0, 1, 50)
        assert euclidean_distance(a, b) == pytest.approx(0.0, abs=1e-6)

    def test_rank_by_euclidean(self, up_down_up, rising_line):
        compiled = compile_query(q.up())
        ranked = rank_by_euclidean([up_down_up, rising_line], compiled, k=2)
        assert ranked[0][0].key == "rise"


class TestVqs:
    def test_smooth_preserves_length(self):
        values = np.arange(20.0)
        assert len(smooth(values, 5)) == 20
        assert np.allclose(smooth(values, 1), values)

    def test_smoothing_reduces_noise(self):
        rng = np.random.default_rng(0)
        noisy = np.linspace(0, 1, 100) + rng.normal(0, 0.3, 100)
        assert smooth(noisy, 9).std() < noisy.std()

    def test_unknown_measure(self):
        with pytest.raises(ExecutionError):
            VisualQuerySystem(measure="cosine")

    def test_rank_with_euclidean(self, up_down_up, rising_line, flat_line):
        vqs = VisualQuerySystem(measure="euclidean")
        sketch = np.concatenate([np.linspace(0, 1, 20), np.linspace(1, 0.2, 20), np.linspace(0.2, 1, 20)])
        ranked = vqs.rank([rising_line, flat_line, up_down_up], sketch, k=1)
        assert ranked[0][0].key == "udu"

    def test_rank_with_dtw(self, up_down_up, rising_line):
        vqs = VisualQuerySystem(measure="dtw", smoothing=3)
        sketch = np.linspace(0, 1, 30)
        ranked = vqs.rank([up_down_up, rising_line], sketch, k=1)
        assert ranked[0][0].key == "rise"
