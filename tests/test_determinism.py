"""Determinism regression tests: same inputs, same results — always.

Guards the shard-merge tie-breaking in ``rank()``: top-k selection uses
the total order *(score desc, candidate position asc)*, so the result
must be identical across runs, across engine instances, and across any
``workers=``/``chunk_size=`` configuration — including collections with
exact score ties.
"""

import numpy as np
import pytest

from repro.algebra import builder as q
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.executor import ShapeSearchEngine

from tests.conftest import make_trendline

QUERY = q.concat(q.up(), q.down(), q.up())


def _collection(count: int = 24, seed: int = 9):
    rng = np.random.default_rng(seed)
    return [
        make_trendline(rng.normal(0, 1, 40).cumsum(), key="tl{:02d}".format(index))
        for index in range(count)
    ]


def _signature(matches):
    """Everything observable about a result list, byte-for-byte."""
    return [
        (
            match.key,
            match.score,
            match.result.chain_index,
            [
                (p.seg_index, p.start, p.end, p.score, p.slope)
                for p in match.placements
            ],
        )
        for match in matches
    ]


class TestRunToRunDeterminism:
    def test_same_engine_repeated(self):
        engine = ShapeSearchEngine()
        trendlines = _collection()
        first = engine.rank(trendlines, QUERY, k=6)
        second = engine.rank(trendlines, QUERY, k=6)
        assert _signature(first) == _signature(second)

    def test_fresh_engine_instances(self):
        trendlines = _collection()
        first = ShapeSearchEngine().rank(trendlines, QUERY, k=6)
        second = ShapeSearchEngine().rank(trendlines, QUERY, k=6)
        assert _signature(first) == _signature(second)

    def test_execute_end_to_end_repeatable(self):
        rng = np.random.default_rng(3)
        zs, xs, ys = [], [], []
        for key in ("a", "b", "c", "d"):
            series = rng.normal(0, 1, 30).cumsum()
            for index, value in enumerate(series):
                zs.append(key)
                xs.append(float(index))
                ys.append(float(value))
        table = Table.from_arrays(z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys))
        params = VisualParams(z="z", x="x", y="y")
        first = ShapeSearchEngine().run(table, params, QUERY, k=3)
        second = ShapeSearchEngine().run(table, params, QUERY, k=3)
        assert _signature(first) == _signature(second)


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers,chunk_size", [(2, None), (3, 1), (4, 5), (4, 100)])
    def test_parallel_matches_sequential(self, workers, chunk_size):
        trendlines = _collection()
        sequential = ShapeSearchEngine().rank(trendlines, QUERY, k=6)
        with ShapeSearchEngine(workers=workers, chunk_size=chunk_size) as parallel:
            shard_merged = parallel.rank(trendlines, QUERY, k=6)
        assert _signature(sequential) == _signature(shard_merged)

    def test_workers_override_per_call(self):
        trendlines = _collection()
        engine = ShapeSearchEngine()
        sequential = engine.rank(trendlines, QUERY, k=5)
        overridden = engine.rank(trendlines, QUERY, k=5, workers=3)
        assert _signature(sequential) == _signature(overridden)

    def test_pruning_path_matches_sequential(self):
        trendlines = _collection(count=30)
        sequential = ShapeSearchEngine(enable_pruning=True).rank(trendlines, QUERY, k=5)
        with ShapeSearchEngine(enable_pruning=True, workers=3) as parallel:
            shard_merged = parallel.rank(trendlines, QUERY, k=5)
        assert [(m.key, m.score) for m in sequential] == [
            (m.key, m.score) for m in shard_merged
        ]


class TestBackendInvariance:
    """Thread, process+shm and process+pickling must agree byte-for-byte."""

    @pytest.mark.parametrize("shm", [True, False])
    def test_process_backend_matches_sequential(self, shm):
        trendlines = _collection()
        sequential = ShapeSearchEngine().rank(trendlines, QUERY, k=6)
        with ShapeSearchEngine(workers=2, backend="process", shm=shm) as parallel:
            shard_merged = parallel.rank(trendlines, QUERY, k=6)
        assert _signature(sequential) == _signature(shard_merged)

    @pytest.mark.parametrize("workers,chunk_size", [(2, 3), (3, 1), (4, 100)])
    def test_shm_worker_count_invariance(self, workers, chunk_size):
        trendlines = _collection()
        sequential = ShapeSearchEngine().rank(trendlines, QUERY, k=6)
        with ShapeSearchEngine(
            workers=workers, backend="process", chunk_size=chunk_size
        ) as parallel:
            shard_merged = parallel.rank(trendlines, QUERY, k=6)
        assert _signature(sequential) == _signature(shard_merged)

    def test_thread_and_process_backends_agree(self):
        trendlines = _collection()
        with ShapeSearchEngine(workers=3, backend="thread") as threaded:
            via_threads = threaded.rank(trendlines, QUERY, k=6)
        with ShapeSearchEngine(workers=3, backend="process") as processed:
            via_processes = processed.rank(trendlines, QUERY, k=6)
        assert _signature(via_threads) == _signature(via_processes)

    def test_shm_pruning_path_matches_sequential(self):
        trendlines = _collection(count=30)
        sequential = ShapeSearchEngine(enable_pruning=True).rank(trendlines, QUERY, k=5)
        with ShapeSearchEngine(
            enable_pruning=True, workers=3, backend="process"
        ) as parallel:
            shard_merged = parallel.rank(trendlines, QUERY, k=5)
        assert [(m.key, m.score) for m in sequential] == [
            (m.key, m.score) for m in shard_merged
        ]


class TestTieBreaking:
    """Exact score ties must resolve identically for any sharding."""

    def _tied_collection(self):
        # Eight byte-identical shapes under distinct keys -> eight exact
        # score ties; plus one clear winner to stress the boundary.
        base = np.concatenate(
            [np.linspace(0, 6, 10), np.linspace(6, 1, 10), np.linspace(1, 7, 10)]
        )
        trendlines = [make_trendline(base, key="dup{}".format(i)) for i in range(8)]
        winner = np.concatenate(
            [np.linspace(0, 9, 10), np.linspace(9, 0, 10), np.linspace(0, 9, 10)]
        )
        trendlines.insert(4, make_trendline(winner, key="winner"))
        return trendlines

    @pytest.mark.parametrize("workers,chunk_size", [(2, 2), (3, 1), (4, 4)])
    def test_ties_shard_invariant(self, workers, chunk_size):
        trendlines = self._tied_collection()
        sequential = ShapeSearchEngine().rank(trendlines, QUERY, k=4)
        with ShapeSearchEngine(workers=workers, chunk_size=chunk_size) as parallel:
            shard_merged = parallel.rank(trendlines, QUERY, k=4)
        assert _signature(sequential) == _signature(shard_merged)

    @pytest.mark.parametrize("workers,chunk_size", [(2, 2), (3, 1)])
    def test_ties_survive_shm_transport(self, workers, chunk_size):
        # Byte-identical duplicates cross process and shared-memory
        # boundaries; the (score desc, position asc) order must still pick
        # the earliest input positions.
        trendlines = self._tied_collection()
        sequential = ShapeSearchEngine().rank(trendlines, QUERY, k=4)
        with ShapeSearchEngine(
            workers=workers, backend="process", chunk_size=chunk_size
        ) as parallel:
            shard_merged = parallel.rank(trendlines, QUERY, k=4)
        assert _signature(sequential) == _signature(shard_merged)

    def test_tied_selection_prefers_earlier_candidates(self):
        trendlines = self._tied_collection()
        matches = ShapeSearchEngine().rank(trendlines, QUERY, k=4)
        assert matches[0].key == "winner"
        # The surviving ties are the earliest positions in input order.
        assert [m.key for m in matches[1:]] == ["dup0", "dup1", "dup2"]
