"""Tests for the compiled scoreable units (engine leaves)."""

import numpy as np
import pytest

from repro.algebra.primitives import Location, Quantifier, Sketch
from repro.engine.chains import Chain, ChainUnit
from repro.engine.scoring import temporary_udp
from repro.engine.units import (
    INFEASIBLE,
    AndUnit,
    LineUnit,
    PositionUnit,
    QuantifierUnit,
    SketchUnit,
    SlopeUnit,
    UdpUnit,
    WindowUnit,
)

from tests.conftest import make_trendline


class TestSlopeUnit:
    def test_up_on_rise(self, rising_line):
        unit = SlopeUnit("up")
        assert unit.score(rising_line, 0, rising_line.n_bins) > 0.5

    def test_down_on_rise_is_negative(self, rising_line):
        unit = SlopeUnit("down")
        assert unit.score(rising_line, 0, rising_line.n_bins) < -0.5

    def test_negated_flips_sign(self, rising_line):
        plain = SlopeUnit("up").score(rising_line, 0, 50)
        negated = SlopeUnit("up", negated=True).score(rising_line, 0, 50)
        assert negated == pytest.approx(-plain)

    def test_too_short_segment_infeasible(self, rising_line):
        assert SlopeUnit("up").score(rising_line, 3, 4) == INFEASIBLE

    def test_scalar_matches_vectorized(self, noisy_up_down_up):
        unit = SlopeUnit("flat")
        rs = np.arange(5, 40)
        vector = unit.score_ends(noisy_up_down_up, 2, rs)
        for value, r in zip(vector, rs):
            assert value == pytest.approx(unit.score(noisy_up_down_up, 2, int(r)), abs=1e-9)
        ls = np.arange(0, 30)
        vector = unit.score_starts(noisy_up_down_up, ls, 40)
        for value, l in zip(vector, ls):
            assert value == pytest.approx(unit.score(noisy_up_down_up, int(l), 40), abs=1e-9)

    def test_theta_unit(self):
        tl = make_trendline(np.linspace(0, 1, 30))
        unit = SlopeUnit("slope", theta=45)
        # Full-range slope in normalized coordinates is deterministic.
        assert -1.0 <= unit.score(tl, 0, 30) <= 1.0

    def test_y_constraint_gates_score(self):
        tl = make_trendline(np.linspace(0, 10, 30))
        good = SlopeUnit("up", location=Location(y_start=0.0, y_end=10.0))
        bad = SlopeUnit("up", location=Location(y_start=9.0))
        assert good.score(tl, 0, 30) > 0
        assert bad.score(tl, 0, 30) == INFEASIBLE

    def test_y_mask_vectorized_matches_scalar(self):
        tl = make_trendline(np.linspace(0, 10, 30))
        unit = SlopeUnit("up", location=Location(y_end=10.0))
        rs = np.arange(5, 31)
        vector = unit.score_ends(tl, 0, rs)
        for value, r in zip(vector, rs):
            assert value == pytest.approx(unit.score(tl, 0, int(r)), abs=1e-9)

    def test_resolve_pins(self):
        tl = make_trendline(np.arange(20.0))
        unit = SlopeUnit("up", location=Location(x_start=5, x_end=10))
        assert unit.resolve_pins(tl) == (5, 11)
        fuzzy = SlopeUnit("up")
        assert fuzzy.resolve_pins(tl) == (None, None)

    def test_bounds_contain_union_scores(self):
        """Table 7: any union of grid windows scores within the bounds."""
        rng = np.random.default_rng(9)
        tl = make_trendline(rng.normal(0, 1, 64).cumsum())
        for kind, theta in [("up", None), ("down", None), ("flat", None), ("slope", 30)]:
            unit = SlopeUnit(kind, theta=theta)
            low, high = unit.window_bounds(tl, 8)
            for start in range(0, 64 - 8, 8):
                for end in range(start + 8, 65, 8):
                    score = unit.score(tl, start, end)
                    assert low - 1e-9 <= score <= high + 1e-9


class TestLineUnit:
    def test_matches_straight_line(self):
        tl = make_trendline(np.linspace(10, 100, 40))
        unit = LineUnit(location=Location(y_start=10, y_end=100))
        assert unit.score(tl, 0, 40) > 0.9

    def test_penalizes_wrong_shape(self):
        tl = make_trendline(np.concatenate([np.linspace(0, 10, 20), np.linspace(10, 0, 20)]))
        unit = LineUnit(location=Location(y_start=0, y_end=0))
        straight = LineUnit(location=Location(y_start=0, y_end=10))
        assert unit.score(tl, 0, 40) < 0.9 or straight.score(tl, 0, 40) < 0.9


class TestQuantifierUnit:
    def _double_peak(self):
        y = np.concatenate([
            np.linspace(0, 5, 15), np.linspace(5, 1, 15),
            np.linspace(1, 6, 15), np.linspace(6, 0, 15),
        ])
        return make_trendline(y, key="dp")

    def test_two_rises_satisfies_exactly_two(self):
        tl = self._double_peak()
        unit = QuantifierUnit("up", Quantifier(low=2, high=2))
        assert unit.score(tl, 0, tl.n_bins) > 0.5

    def test_three_rises_required_fails(self):
        tl = self._double_peak()
        unit = QuantifierUnit("up", Quantifier(low=3))
        assert unit.score(tl, 0, tl.n_bins) == INFEASIBLE

    def test_at_most_one_fall_fails_on_two(self):
        tl = self._double_peak()
        unit = QuantifierUnit("down", Quantifier(high=1))
        assert unit.score(tl, 0, tl.n_bins) == INFEASIBLE

    def test_at_most_trivial_pass(self, rising_line):
        unit = QuantifierUnit("down", Quantifier(high=1))
        assert unit.score(rising_line, 0, 50) > 0 or unit.score(rising_line, 0, 50) == 1.0

    def test_udp_quantifier(self):
        tl = self._double_peak()
        with temporary_udp("always", lambda values, slope: 0.9):
            unit = QuantifierUnit("udp", Quantifier(low=1), udp_name="always")
            assert unit.score(tl, 0, tl.n_bins) == pytest.approx(0.9)


class TestPositionUnit:
    def test_neutral_without_context(self, rising_line):
        unit = PositionUnit(reference_index=0, comparison="<")
        assert unit.score(rising_line, 0, 50) == 0.0

    def test_scores_with_context(self, rising_line):
        unit = PositionUnit(reference_index=0, comparison="<")
        slope = rising_line.prefix.slope(0, 50)
        stronger = {0: slope * 3}
        weaker = {0: slope / 3}
        assert unit.score(rising_line, 0, 50, stronger) > 0
        assert unit.score(rising_line, 0, 50, weaker) < 0

    def test_has_position_flag(self):
        assert PositionUnit(reference_index=0, comparison="=").has_position


class TestSketchUnit:
    def test_matching_sketch_scores_high(self, rising_line):
        sketch = Sketch(points=((0, 0), (25, 5), (49, 10)))
        unit = SketchUnit(sketch)
        assert unit.score(rising_line, 0, 50) > 0.8

    def test_opposite_sketch_scores_low(self, rising_line):
        sketch = Sketch(points=((0, 10), (25, 5), (49, 0)))
        unit = SketchUnit(sketch)
        assert unit.score(rising_line, 0, 50) < 0


class TestUdpUnit:
    def test_udp_called_and_clipped(self, rising_line):
        with temporary_udp("big", lambda values, slope: 5.0):
            unit = UdpUnit("big")
            assert unit.score(rising_line, 0, 50) == 1.0

    def test_negated_udp(self, rising_line):
        with temporary_udp("half", lambda values, slope: 0.5):
            unit = UdpUnit("half", negated=True)
            assert unit.score(rising_line, 0, 50) == pytest.approx(-0.5)


class TestWindowUnit:
    def test_finds_best_window(self):
        y = np.concatenate([np.zeros(20), np.linspace(0, 8, 10), np.full(20, 8.0)])
        tl = make_trendline(y, key="burst")
        unit = WindowUnit(SlopeUnit("up"), width=10)
        whole = SlopeUnit("up").score(tl, 0, tl.n_bins)
        windowed = unit.score(tl, 0, tl.n_bins)
        assert windowed > whole

    def test_window_wider_than_region_infeasible(self, rising_line):
        unit = WindowUnit(SlopeUnit("up"), width=100)
        assert unit.score(rising_line, 0, 10) == INFEASIBLE


class TestAndUnit:
    def test_min_of_branches(self, rising_line):
        up = Chain((ChainUnit(SlopeUnit("up"), 1.0),))
        flat = Chain((ChainUnit(SlopeUnit("flat"), 1.0),))
        unit = AndUnit([[up], [flat]])
        up_score = SlopeUnit("up").score(rising_line, 0, 50)
        flat_score = SlopeUnit("flat").score(rising_line, 0, 50)
        assert unit.score(rising_line, 0, 50) == pytest.approx(min(up_score, flat_score))

    def test_branch_with_concat_chain(self, up_down_up):
        chain = Chain(
            (ChainUnit(SlopeUnit("up"), 0.5), ChainUnit(SlopeUnit("down"), 0.5))
        )
        unit = AndUnit([[chain]])
        score = unit.score(up_down_up, 0, 40)
        assert score > 0.5  # up then down fits the first two thirds
