"""Cross-check: explain_plan names exactly the stages the stats report.

Satellite contract of the API redesign: for every backend × generation ×
kernel combination, the pre-run ``explain_plan`` text, the post-run
``ResultSet.plan`` text, and the post-run ``ExecutionStats`` must tell
one consistent story — the planner's choice is what actually executed.
"""

import re

import numpy as np
import pytest

from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.executor import ShapeSearchEngine
from repro.engine.pipeline import generate_trendlines
from repro.parser import parse

PARAMS = VisualParams(z="z", x="x", y="y")
QUERY = parse("[p=up][p=down]")

#: ``Name[mode]`` per EXPLAIN line, e.g. ``("Score", "sequential")``.
_STAGE = re.compile(r"^(?:\s*->\s*)?([\w/]+)\[([^\]]*)\]")


def _table(groups=8, length=25, seed=3):
    rng = np.random.default_rng(seed)
    zs, xs, ys = [], [], []
    for g in range(groups):
        values = rng.normal(0, 1, length).cumsum()
        for i, v in enumerate(values):
            zs.append("g{:02d}".format(g))
            xs.append(float(i))
            ys.append(float(v))
    return Table.from_arrays(
        z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys)
    )


def parse_stages(plan_text):
    stages = []
    for line in plan_text.splitlines():
        matched = _STAGE.match(line)
        assert matched, "unparseable EXPLAIN line: {!r}".format(line)
        stages.append((matched.group(1), matched.group(2)))
    return stages


@pytest.mark.parametrize("kernel", ["matrix", "loop"])
@pytest.mark.parametrize("generation", ["parent", "worker", "auto"])
@pytest.mark.parametrize("backend,workers", [
    ("thread", 1), ("thread", 3), ("process", 2),
])
def test_plan_names_the_stages_stats_report(backend, workers, generation, kernel):
    table = _table()
    with ShapeSearchEngine(
        workers=workers, backend=backend, generation=generation, kernel=kernel
    ) as engine:
        planned = engine.explain_plan(table, PARAMS, QUERY, k=3)
        results = engine.run(table, PARAMS, QUERY, k=3)
        stats = results.stats

        # The plan that ran is the plan that was promised.
        assert results.plan == planned

        stages = parse_stages(planned)
        names = [name for name, _mode in stages]
        assert names == ["ScanTable", "Extract/Group", "Score", "MergeTopK"]
        modes = dict(stages)

        # Extract/Group[mode] is exactly ExecutionStats.generation.
        assert modes["Extract/Group"] == stats.generation

        # Score[mode] vs the shard accounting at the MergeTopK rendezvous.
        score_mode = modes["Score"]
        if score_mode == "sequential":
            assert workers == 1
            assert stats.shards == 0  # single in-process shard, not counted
        else:
            assert workers > 1
            assert stats.shards >= 1
        if score_mode == "worker-generate":
            assert stats.generation == "worker"
        else:
            assert stats.generation == "parent"

        # ScanTable[shared-memory] appears exactly when worker-side
        # generation needs the table published (process backend).
        expected_scan = (
            "shared-memory"
            if stats.generation == "worker" and backend == "process"
            else "in-process"
        )
        assert modes["ScanTable"] == expected_scan

        # Every candidate is accounted for by the Score stage counters.
        assert stats.scored + stats.eager_discarded == stats.candidates
        assert len(results) == 3


def test_prebuilt_rank_plan_reports_prebuilt_scan():
    table = _table()
    trendlines = generate_trendlines(table, PARAMS)
    with ShapeSearchEngine(workers=2) as engine:
        results, stats = engine.rank_with_stats(trendlines, QUERY, k=3)
        stages = parse_stages(results.plan)
        assert stages[0] == ("Scan", "prebuilt")
        assert [name for name, _mode in stages] == ["Scan", "Score", "MergeTopK"]
        assert stats.generation == "parent"


def test_pruning_plan_reports_pruning_detail():
    table = _table()
    with ShapeSearchEngine(
        enable_pruning=True, sample_size=3, sample_points=32
    ) as engine:
        results = engine.run(table, PARAMS, QUERY, k=3)
        assert "pruning" in results.plan
        assert results.stats.pruning is not None


@pytest.mark.parametrize("workers", [1, 3])
def test_workers_override_changes_both_plan_and_stats(workers):
    table = _table()
    with ShapeSearchEngine(workers=2) as engine:
        planned = engine.explain_plan(table, PARAMS, QUERY, k=3, workers=workers)
        results = engine.run(table, PARAMS, QUERY, k=3, workers=workers)
        assert results.plan == planned
        assert "workers={}".format(workers) in planned
        if workers == 1:
            assert results.stats.shards == 0
        else:
            assert results.stats.shards >= 1
