"""Worker-side EXTRACT/GROUP: byte-identity with parent-side generation.

The staged pipeline's parallel Extract/Group implementation generates
trendlines *inside* the workers (fused with scoring, over the shared
table).  These tests assert the core contract: for any table — including
single-group, dropped-group and empty-after-filters edge cases — any
backend, worker count, shm setting and DP kernel, worker-side generation
produces byte-identical trendlines, scores, placements and top-k order
to the parent-side path.
"""

import numpy as np
import pytest

from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.executor import ShapeSearchEngine
from repro.engine.pipeline import (
    count_groups,
    generate_range,
    generate_trendlines,
    plan_pipeline,
)
from repro.errors import ExecutionError
from repro.parser import parse

PARAMS = VisualParams(z="z", x="x", y="y")
QUERY = parse("[p=up][p=down]")


def _random_table(seed: int, groups: int = 10) -> Table:
    """A randomized multi-group table with awkward shapes baked in.

    Every third group is a single point (dropped by EXTRACT), one group
    repeats x values (exercising duplicate-x aggregation), and one is
    constant (degenerate y).  The drops leave gaps in the group-index
    space, which is exactly what the worker-side position compaction
    must survive.
    """
    rng = np.random.default_rng(seed)
    zs, xs, ys = [], [], []
    for g in range(groups):
        key = "g{:02d}".format(g)
        if g % 3 == 2:
            length = 1  # dropped: a trendline needs two points
        else:
            length = int(rng.integers(8, 40))
        values = rng.normal(0, 1, length).cumsum()
        for i, v in enumerate(values):
            zs.append(key)
            # One group gets duplicate x values to force aggregation.
            xs.append(float(i // 2) if g == 1 else float(i))
            ys.append(float(v))
    return Table.from_arrays(
        z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys)
    )


def _signature(matches):
    return [
        (
            m.key,
            m.score,
            tuple((p.start, p.end, p.score, p.slope) for p in m.placements),
        )
        for m in matches
    ]


def _execute(table, query, k=5, **engine_kwargs):
    with ShapeSearchEngine(**engine_kwargs) as engine:
        matches = engine.run(table, PARAMS, query, k=k)
        return matches, matches.stats


class TestWorkerGenerationProperty:
    """Parent-side vs worker-side EXTRACT/GROUP over randomized tables."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("workers", [2, 3])
    def test_thread_backend_matches_parent(self, seed, workers):
        table = _random_table(seed)
        expected, _ = _execute(table, QUERY)  # sequential parent oracle
        got, stats = _execute(
            table, QUERY, workers=workers, backend="thread", generation="worker"
        )
        assert stats.generation == "worker"
        assert _signature(got) == _signature(expected)

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("shm", [True, False])
    def test_process_backend_matches_parent(self, seed, shm):
        table = _random_table(seed)
        expected, _ = _execute(table, QUERY)
        got, stats = _execute(
            table, QUERY, workers=2, backend="process", shm=shm, generation="worker"
        )
        # Without the shm transport workers cannot reach the table, so
        # the planner falls back to parent-side generation — results
        # must be identical either way.
        assert stats.generation == ("worker" if shm else "parent")
        assert _signature(got) == _signature(expected)

    @pytest.mark.parametrize("kernel", ["matrix", "loop"])
    def test_kernels_match(self, kernel):
        table = _random_table(3)
        query = parse("[p=up][p=down][p=up]")
        expected, _ = _execute(table, query, algorithm="dp", kernel=kernel)
        got, stats = _execute(
            table, query, algorithm="dp", kernel=kernel,
            workers=2, backend="thread", generation="worker",
        )
        assert stats.generation == "worker"
        assert _signature(got) == _signature(expected)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_counts_identical(self, workers):
        table = _random_table(4, groups=13)
        baseline, _ = _execute(
            table, QUERY, workers=2, backend="thread", generation="worker",
            chunk_size=1,
        )
        got, _ = _execute(
            table, QUERY, workers=workers, backend="thread", generation="worker"
        )
        assert _signature(got) == _signature(baseline)

    def test_generated_trendlines_byte_identical(self):
        """generate_range must reproduce generate_trendlines bit for bit."""
        table = _random_table(5)
        parent = generate_trendlines(table, PARAMS, normalize_y=True, plan=None)
        count = count_groups(table, PARAMS)
        pairs = []
        # Deliberately awkward range boundaries, including empty tails.
        for start, end in [(0, 3), (3, 4), (4, 9), (9, count), (count, count + 5)]:
            pairs.extend(
                generate_range(table, PARAMS, True, None, start, end)
            )
        assert len(pairs) == len(parent)
        for (index, worker_side), parent_side in zip(pairs, parent):
            assert worker_side.key == parent_side.key
            np.testing.assert_array_equal(worker_side.bin_x, parent_side.bin_x)
            np.testing.assert_array_equal(worker_side.norm_bin_y, parent_side.norm_bin_y)
            np.testing.assert_array_equal(
                worker_side.prefix.sxy, parent_side.prefix.sxy
            )
            assert worker_side.y_mean == parent_side.y_mean
            assert worker_side.y_std == parent_side.y_std
        # Gaps preserve order: indices strictly increase across ranges.
        indices = [index for index, _ in pairs]
        assert indices == sorted(indices)


class TestEdgeCases:
    def test_single_group_table(self):
        rng = np.random.default_rng(6)
        values = rng.normal(0, 1, 30).cumsum()
        table = Table.from_arrays(
            z=np.array(["only"] * 30, dtype=object),
            x=np.arange(30, dtype=float),
            y=values,
        )
        expected, _ = _execute(table, QUERY)
        got, stats = _execute(
            table, QUERY, workers=3, backend="thread", generation="worker"
        )
        assert stats.generation == "worker"
        assert stats.extracted == stats.candidates == 1
        assert _signature(got) == _signature(expected)

    def test_all_groups_filtered_out(self):
        table = _random_table(7)
        params = VisualParams(z="z", x="x", y="y", filters=("y > 1e9",))
        with ShapeSearchEngine(
            workers=2, backend="thread", generation="worker"
        ) as engine:
            matches = engine.run(table, params, QUERY, k=5)
            assert matches == []
            assert matches.stats.generation == "worker"
            assert matches.stats.candidates == 0
            assert matches.stats.extracted == 0

    def test_every_group_dropped_by_extract(self):
        # All groups are single points: group count is nonzero but no
        # trendline survives extraction in any worker.
        table = Table.from_arrays(
            z=np.array(["a", "b", "c"], dtype=object),
            x=np.array([0.0, 0.0, 0.0]),
            y=np.array([1.0, 2.0, 3.0]),
        )
        got, stats = _execute(
            table, QUERY, workers=2, backend="thread", generation="worker"
        )
        assert got == []
        assert stats.candidates == 0

    def test_object_keys_survive_shared_table(self):
        """Distinct object z-values with colliding str() stay distinct.

        The shared-table export pickles object columns, so the worker
        groups by the publisher's exact key objects — int ``1`` and str
        ``"1"`` must remain two trendlines with their original key types,
        exactly as parent-side generation produces them.
        """
        rng = np.random.default_rng(15)
        zs, xs, ys = [], [], []
        for key in (1, "1", None, "None"):
            values = rng.normal(0, 1, 20).cumsum()
            for i, v in enumerate(values):
                zs.append(key)
                xs.append(float(i))
                ys.append(float(v))
        table = Table.from_arrays(
            z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys)
        )
        expected, _ = _execute(table, QUERY, k=4)
        assert len(expected) == 4  # four distinct groups parent-side
        got, stats = _execute(
            table, QUERY, k=4, workers=2, backend="process",
            shm=True, generation="worker",
        )
        assert stats.generation == "worker"
        assert _signature(got) == _signature(expected)
        assert {type(m.key) for m in got} == {type(m.key) for m in expected}

    def test_eager_discard_consistent(self):
        table = _random_table(8)
        query = parse("[x.s=0,x.e=10,p=up][p=down]")
        expected, expected_stats = _execute(table, query, k=1)
        got, stats = _execute(
            table, query, k=1, workers=2, backend="thread", generation="worker"
        )
        assert _signature(got) == _signature(expected)
        assert (
            stats.scored + stats.eager_discarded
            == stats.candidates
            == expected_stats.candidates
        )


class TestPlannerPolicy:
    def test_auto_prefers_parent_with_cache(self):
        table = _random_table(9)
        with ShapeSearchEngine(
            workers=2, backend="process", cache=True
        ) as engine:
            result = engine.run(table, PARAMS, QUERY, k=3)
            assert result.stats.generation == "parent"

    def test_auto_defers_on_cacheless_process_backend(self):
        table = _random_table(9)
        with ShapeSearchEngine(workers=2, backend="process") as engine:
            result = engine.run(table, PARAMS, QUERY, k=3)
            assert result.stats.generation == "worker"

    def test_auto_stays_parent_on_thread_backend(self):
        table = _random_table(9)
        with ShapeSearchEngine(workers=2, backend="thread") as engine:
            result = engine.run(table, PARAMS, QUERY, k=3)
            assert result.stats.generation == "parent"

    def test_pruning_falls_back_to_parent(self):
        table = _random_table(10)
        expected, _ = _execute(
            table, QUERY, enable_pruning=True, sample_size=3, sample_points=32
        )
        got, stats = _execute(
            table, QUERY, workers=2, backend="thread", generation="worker",
            enable_pruning=True, sample_size=3, sample_points=32,
        )
        assert stats.generation == "parent"
        assert [(m.key, m.score) for m in got] == [
            (m.key, m.score) for m in expected
        ]

    def test_workers_one_falls_back_to_parent(self):
        table = _random_table(10)
        got, stats = _execute(table, QUERY, workers=1, generation="worker")
        assert stats.generation == "parent"
        assert _signature(got) == _signature(_execute(table, QUERY)[0])

    def test_rank_paths_ignore_generation(self):
        table = _random_table(11)
        trendlines = generate_trendlines(table, PARAMS)
        with ShapeSearchEngine(
            workers=2, backend="thread", generation="worker"
        ) as engine:
            matches = engine.rank(trendlines, QUERY, k=3)
            assert engine.last_stats.generation == "parent"
            assert len(matches) == 3
            assert matches.stats.generation == "parent"

    def test_unknown_generation_rejected(self):
        with pytest.raises(ExecutionError):
            ShapeSearchEngine(generation="sideways")

    def test_plan_shapes(self):
        table = _random_table(11)
        engine = ShapeSearchEngine(workers=4, backend="process")
        try:
            compiled_plan = plan_pipeline(
                engine, engine._compile(QUERY), 5, table=table, params=PARAMS
            )
            names = [type(op).__name__ for op in compiled_plan.operators]
            assert names == [
                "ScanTable", "ExtractGroup", "GenerateAndScore", "MergeTopK",
            ]
            assert compiled_plan.generation == "worker"
            rank_plan = plan_pipeline(
                engine, engine._compile(QUERY), 5, trendlines=[]
            )
            assert [type(op).__name__ for op in rank_plan.operators] == [
                "PrebuiltScan", "SharedMemoryScore", "MergeTopK",
            ]
        finally:
            engine.close()

    def test_explain_plan_renders_stages(self):
        table = _random_table(11)
        engine = ShapeSearchEngine(workers=2, backend="process")
        try:
            text = engine.explain_plan(table, PARAMS, QUERY, k=7)
            assert "ScanTable[shared-memory]" in text
            assert "Extract/Group[worker]" in text
            assert "Score[worker-generate]" in text
            assert "MergeTopK" in text and "k=7" in text
        finally:
            engine.close()

    def test_explain_plan_via_session_api(self):
        from repro.api import ShapeSearch

        table = _random_table(11)
        with ShapeSearch(table) as session:
            text = session.explain_plan("up then down", z="z", x="x", y="y")
            assert "Extract/Group[parent]" in text
            assert "Score[sequential]" in text


class TestStreamingSegments:
    def test_tuple_keys_roundtrip_shared_table(self):
        """Composite (tuple) group keys survive the pickled export 1-D."""
        from repro.engine import shm

        keys = [("a", 1), ("a", 1), ("b", 2)]
        z = np.empty(len(keys), dtype=object)
        for i, key in enumerate(keys):  # np.array would split tuples 2-D
            z[i] = key
        table = Table.from_arrays(
            z=z, x=np.array([0.0, 1.0, 0.0]), y=np.array([1.0, 2.0, 3.0])
        )
        handle, segment = shm.publish_table(table)
        try:
            rebuilt, attachment = shm.attach_table(handle)
            column = rebuilt.column("z")
            assert column.shape == (3,)
            assert column.tolist() == [("a", 1), ("a", 1), ("b", 2)]
            assert [key for key, _rows in rebuilt.group_by("z")] == [
                ("a", 1), ("b", 2),
            ]
            attachment.close()
        finally:
            segment.close()
            segment.unlink()

    def test_unrelated_columns_not_published(self):
        """Worker-side generation ships only the columns the query reads.

        An object column the query never touches may hold values that do
        not pickle (and parent-side generation never looked at them);
        publishing must neither copy nor serialize it.
        """
        rng = np.random.default_rng(18)
        zs, xs, ys = [], [], []
        for g in range(6):
            for i, v in enumerate(rng.normal(0, 1, 20).cumsum()):
                zs.append("g{}".format(g))
                xs.append(float(i))
                ys.append(float(v))
        unpicklable = np.empty(len(zs), dtype=object)
        for i in range(len(zs)):
            unpicklable[i] = lambda: None  # lambdas cannot pickle
        table = Table.from_arrays(
            z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys),
            meta=unpicklable,
        )
        expected, _ = _execute(table, QUERY)
        got, stats = _execute(
            table, QUERY, workers=2, backend="process", shm=True,
            generation="worker",
        )
        assert stats.generation == "worker"
        assert _signature(got) == _signature(expected)

    def test_subset_publish_manifest(self):
        from repro.engine import shm

        table = Table.from_arrays(
            z=np.array(["a", "a"], dtype=object),
            x=np.array([0.0, 1.0]),
            y=np.array([1.0, 2.0]),
            extra=np.array([9.0, 9.0]),
        )
        handle, segment = shm.publish_table(table, columns=("z", "x", "y"))
        try:
            assert [name for name, *_rest in handle.columns] == ["z", "x", "y"]
            assert handle.token != handle.fingerprint  # subset-keyed
            rebuilt, attachment = shm.attach_table(handle)
            assert rebuilt.column_names == ["z", "x", "y"]
            attachment.close()
        finally:
            segment.close()
            segment.unlink()

    def test_repinned_evictions_defer_every_generation(self):
        """Evict → republish → evict of one fingerprint while pinned must
        park (and eventually unlink) *both* segments, not leak the first."""
        from repro.engine import shm

        session = shm.ShmSession()
        try:
            table = _random_table(16, groups=3)
            fingerprint_handle = session.table_handle(table)
            fingerprint = fingerprint_handle.fingerprint
            session.pin(fingerprint_handle)
            session.pin(fingerprint_handle)  # two dispatches in flight

            def evict_all_tables():
                filler = _random_table(17, groups=2)
                for step in range(shm.ShmSession.MAX_TABLES):
                    session.table_handle(filler)
                    filler = filler.append_rows(
                        [{"z": "f{}".format(step), "x": 0.0, "y": 1.0},
                         {"z": "f{}".format(step), "x": 1.0, "y": 2.0}]
                    )

            evict_all_tables()  # parks generation 1
            session.table_handle(table)  # republish same fingerprint
            evict_all_tables()  # parks generation 2
            assert len(session._deferred.get(fingerprint, [])) == 2
            session.unpin(fingerprint_handle)
            assert len(session._deferred.get(fingerprint, [])) == 2  # still pinned
            session.unpin(fingerprint_handle)
            assert fingerprint not in session._deferred  # both unlinked
        finally:
            session.close()

    def test_streaming_appends_recycle_table_segments(self):
        """A fingerprint-churning append loop must not grow /dev/shm."""
        from repro.engine import shm

        session = shm.ShmSession()
        try:
            table = _random_table(14, groups=4)
            for step in range(shm.ShmSession.MAX_TABLES + 3):
                session.table_handle(table)
                table = table.append_rows(
                    [{"z": "x{}".format(step), "x": 0.0, "y": 1.0},
                     {"z": "x{}".format(step), "x": 1.0, "y": 2.0}]
                )
            assert len(session._tables) <= shm.ShmSession.MAX_TABLES
            assert len(session._segments) <= shm.ShmSession.MAX_TABLES
        finally:
            session.close()


class TestBatchAndRepeat:
    def test_execute_many_worker_mode_matches(self):
        table = _random_table(12)
        queries = [parse("[p=up][p=down]"), parse("[p=down][p=up]")]
        with ShapeSearchEngine() as sequential:
            expected = sequential.run_many(table, PARAMS, queries, k=3)
        with ShapeSearchEngine(
            workers=2, backend="thread", generation="worker"
        ) as engine:
            got = engine.run_many(table, PARAMS, queries, k=3)
        assert [_signature(m) for m in got] == [_signature(m) for m in expected]

    def test_repeat_query_hits_worker_range_cache(self):
        table = _random_table(13)
        with ShapeSearchEngine(
            workers=2, backend="thread", generation="worker"
        ) as engine:
            first = engine.run(table, PARAMS, QUERY, k=3)
            # Thread-backend generation state hangs off the table itself
            # (its lifetime, not the engine's or a module global's).
            state = table._generation_state
            ranges_cached = len(state.ranges)
            assert ranges_cached > 0
            second = engine.run(table, PARAMS, QUERY, k=3)
            assert _signature(first) == _signature(second)
            # Deterministic range boundaries: the repeat reused entries
            # instead of inserting new ones.
            assert len(state.ranges) == ranges_cached

    def test_generation_state_dies_with_the_table(self):
        import gc
        import weakref

        table = _random_table(13)
        with ShapeSearchEngine(
            workers=2, backend="thread", generation="worker"
        ) as engine:
            engine.run(table, PARAMS, QUERY, k=3)
            state_ref = weakref.ref(table._generation_state)
            assert state_ref() is not None
        del table
        gc.collect()  # table <-> state is a cycle (filtered may be table)
        assert state_ref() is None  # nothing else retains the caches
