"""Regression + property tests for PR 6's Table-layer bug fixes.

* ``group_by`` NaN keys: one coalesced group (or dropped) instead of one
  singleton group per NaN row (``hash(nan)`` is id-based on CPython 3.10+).
* ``from_records`` schema mismatches: loud ``DataError`` instead of
  silent None/NaN injection, with ``lenient=True`` as the escape hatch.
* ``append_rows`` fingerprints: the incrementally extended digest equals
  a from-scratch rehash, across widening, NaN and object batches.
* Tables pickle (the process-without-shm tail transport).
"""

import math
import pickle

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.table import Table, canonical_group_key
from repro.data.visual_params import VisualParams
from repro.engine.cache import table_fingerprint
from repro.engine.pipeline import count_groups
from repro.errors import DataError


class TestGroupByNan:
    def _table(self):
        return Table.from_arrays(
            z=np.array([1.0, float("nan"), 2.0, float("nan"), 1.0]),
            v=np.arange(5.0),
        )

    def test_nan_rows_coalesce_into_one_group(self):
        groups = list(self._table().group_by("z"))
        assert len(groups) == 3  # 1.0, nan, 2.0 — not one group per nan row
        nan_groups = [
            (key, rows) for key, rows in groups
            if isinstance(key, float) and math.isnan(key)
        ]
        assert len(nan_groups) == 1
        assert list(nan_groups[0][1]) == [1, 3]

    def test_nan_policy_drop_skips_nan_rows(self):
        groups = list(self._table().group_by("z", nan_policy="drop"))
        assert len(groups) == 2
        assert all(not (isinstance(k, float) and math.isnan(k)) for k, _ in groups)

    def test_unknown_policy_raises(self):
        with pytest.raises(DataError, match="nan_policy"):
            list(self._table().group_by("z", nan_policy="zap"))

    def test_canonical_key_is_singleton(self):
        a = canonical_group_key(float("nan"))
        b = canonical_group_key(np.float64("nan"))
        assert a is b  # one dict key for every NaN representation
        assert canonical_group_key(2.5) == 2.5

    def test_count_groups_agrees_with_group_by(self):
        table = self._table()
        params = VisualParams(z="z", x="v", y="v")
        assert count_groups(table, params) == len(list(table.group_by("z")))


class TestFromRecordsStrict:
    def test_missing_key_raises(self):
        with pytest.raises(DataError, match="record 1"):
            Table.from_records([{"a": 1, "b": 2}, {"a": 3}])

    def test_unknown_key_raises(self):
        with pytest.raises(DataError, match="lenient"):
            Table.from_records([{"a": 1}, {"a": 2, "b": 9}])

    def test_lenient_restores_padding(self):
        table = Table.from_records(
            [{"a": 1, "b": 2.0}, {"a": 3}], lenient=True
        )
        assert len(table) == 2
        pad = table.column("b")[1]
        assert pad is None or math.isnan(float(pad))

    def test_uniform_records_unaffected(self):
        table = Table.from_records([{"a": 1}, {"a": 2}])
        assert table.column("a").tolist() == [1, 2]

    def test_session_passthrough(self):
        from repro.api import ShapeSearch

        with pytest.raises(DataError):
            ShapeSearch.from_records([{"a": 1, "b": 1}, {"a": 2}])
        session = ShapeSearch.from_records(
            [{"a": 1, "b": 1}, {"a": 2}], lenient=True
        )
        assert len(session.table) == 2
        session.close()


_VALUE = st.one_of(
    st.integers(min_value=-10, max_value=10),
    st.floats(allow_infinity=False, width=32),  # includes NaN
    st.text(alphabet="abcXYZ", max_size=4),
)


class TestFingerprintExtension:
    @given(
        st.lists(_VALUE, min_size=1, max_size=8),
        st.lists(_VALUE, min_size=1, max_size=8),
    )
    def test_incremental_equals_from_scratch(self, head, tail):
        """Satellite 4: digest extension == full rehash, any value mix.

        Columns are built per-batch from a homogeneous schema ("v" holds
        the value, "i" the row index) so batches exercise dtype widening
        (int head + float tail), NaN payloads and object columns — the
        three append flavors with distinct digest paths.
        """
        base = Table.from_records(
            [{"i": i, "v": v} for i, v in enumerate(head)]
        )
        appended = base.append_rows(
            [{"i": len(head) + i, "v": v} for i, v in enumerate(tail)]
        )
        # From-scratch comparator over the same logical rows: head values
        # as the base table materialized them (type inference already
        # applied), tail values as the raw appended records.
        head_records = [
            {name: base.column(name).tolist()[row] for name in base.column_names}
            for row in range(len(base))
        ]
        scratch = Table.from_records(
            head_records
            + [{"i": len(head) + i, "v": v} for i, v in enumerate(tail)]
        )
        assert table_fingerprint(appended) == table_fingerprint(scratch)
        for name in appended.column_names:
            assert appended.column(name).dtype == scratch.column(name).dtype

    def test_widening_append_matches_scratch(self):
        base = Table.from_arrays(v=np.array([1, 2, 3]))
        appended = base.append_rows([{"v": 2.5}])
        scratch = Table.from_arrays(v=np.array([1.0, 2.0, 3.0, 2.5]))
        assert table_fingerprint(appended) == table_fingerprint(scratch)

    def test_chained_appends_match_scratch(self):
        table = Table.from_records([{"v": 0.0}])
        rows = [0.0]
        for batch in range(4):
            new = [float(batch) + j / 7.0 for j in range(3)]
            table = table.append_rows([{"v": value} for value in new])
            rows.extend(new)
        scratch = Table.from_records([{"v": value} for value in rows])
        assert table_fingerprint(table) == table_fingerprint(scratch)


class TestTablePickle:
    def test_round_trip_preserves_content_and_fingerprint(self):
        table = Table.from_arrays(
            z=np.array(["a", "b", "a"], dtype=object),
            x=np.arange(3.0),
        )
        clone = pickle.loads(pickle.dumps(table))
        assert clone.column_names == table.column_names
        assert clone.column("x").tolist() == table.column("x").tolist()
        assert table_fingerprint(clone) == table_fingerprint(table)

    def test_unpickled_arrays_are_read_only(self):
        table = Table.from_arrays(x=np.arange(3.0))
        clone = pickle.loads(pickle.dumps(table))
        with pytest.raises((ValueError, RuntimeError)):
            clone.column("x")[0] = 99.0

    def test_unpickled_table_still_appends(self):
        table = pickle.loads(pickle.dumps(Table.from_arrays(x=np.arange(3.0))))
        grown = table.append_rows([{"x": 3.0}])
        assert len(grown) == 4
