"""Tests for NL → ShapeQuery translation and ambiguity resolution (§4)."""

import pytest

from repro.algebra.nodes import Concat, Opposite, Or, ShapeSegment
from repro.algebra.printer import to_regex
from repro.errors import ShapeQuerySyntaxError
from repro.nlp.ambiguity import ProtoSegment, resolve
from repro.nlp.translator import parse_natural_language, translate


@pytest.fixture
def tagger(rule_tagger):
    return rule_tagger


class TestBasicTranslation:
    def test_paper_genomics_query(self, tagger):
        node = parse_natural_language(
            "show me genes that are rising, then going down, and then increasing",
            tagger=tagger,
        )
        assert to_regex(node) == "[p=up][p=down][p=up]"

    def test_sharp_peak_query(self, tagger):
        node = parse_natural_language(
            "find me objects with a sharp peak in luminosity", tagger=tagger
        )
        assert to_regex(node) == "[p=up,m=>>][p=down,m=<<]"

    def test_quantifier_at_least(self, tagger):
        node = parse_natural_language("rising at least 2 times", tagger=tagger)
        assert to_regex(node) == "[p=up,m={2,}]"

    def test_quantifier_at_most(self, tagger):
        node = parse_natural_language("falling at most 2 times", tagger=tagger)
        assert to_regex(node) == "[p=down,m={,2}]"

    def test_quantifier_twice(self, tagger):
        node = parse_natural_language("rising twice", tagger=tagger)
        assert to_regex(node) == "[p=up,m=2]"

    def test_counted_peaks(self, tagger):
        node = parse_natural_language("genes with 2 peaks", tagger=tagger)
        assert to_regex(node) == "[p=up,m=2]"

    def test_location_from_to(self, tagger):
        node = parse_natural_language(
            "increasing from 2 to 5 and then falling", tagger=tagger
        )
        assert to_regex(node) == "[x.s=2,x.e=5,p=up][p=down]"

    def test_disjunction_groups_tightly(self, tagger):
        node = parse_natural_language(
            "first increasing and then either stabilizing or decreasing", tagger=tagger
        )
        assert to_regex(node) == "[p=up]([p=flat] | [p=down])"

    def test_negation(self, tagger):
        node = parse_natural_language("not flat", tagger=tagger)
        assert isinstance(node, Opposite) or (
            isinstance(node, ShapeSegment) and node.negated
        )

    def test_window(self, tagger):
        node = parse_natural_language(
            "maximum rise in temperature within 3 months", tagger=tagger
        )
        assert to_regex(node) == "[x.s=.,x.e=.+3,p=up]"

    def test_modifier_before_and_after_pattern(self, tagger):
        before = parse_natural_language("sharply rising then falling", tagger=tagger)
        after = parse_natural_language("rising sharply then falling", tagger=tagger)
        assert to_regex(before) == to_regex(after) == "[p=up,m=>>][p=down]"

    def test_no_entities_raises(self, tagger):
        with pytest.raises(ShapeQuerySyntaxError):
            parse_natural_language("hello world nothing here", tagger=tagger)

    def test_typo_robustness(self, tagger):
        node = parse_natural_language("incresing then decreasing", tagger=tagger)
        assert to_regex(node) == "[p=up][p=down]"

    def test_translation_exposes_log(self, tagger):
        result = translate("rising falling then flat", tagger=tagger)
        assert isinstance(result.log, list)
        assert isinstance(result.query, (Concat, Or, ShapeSegment))


class TestCrfMode:
    """The shipped CRF weights must reproduce the rule-mode translations."""

    @pytest.mark.parametrize(
        "query,expected",
        [
            (
                "show me genes that are rising, then going down, and then increasing",
                "[p=up][p=down][p=up]",
            ),
            ("find me objects with a sharp peak in luminosity", "[p=up,m=>>][p=down,m=<<]"),
            ("rising at least 2 times", "[p=up,m={2,}]"),
            (
                "first increasing and then either stabilizing or decreasing",
                "[p=up]([p=flat] | [p=down])",
            ),
        ],
    )
    def test_crf_translations(self, query, expected):
        node = parse_natural_language(query)  # default tagger = CRF
        assert to_regex(node) == expected


class TestAmbiguityRules:
    def test_multiple_patterns_move_to_empty_neighbour(self):
        segments = [
            ProtoSegment(patterns=["up", "down"]),
            ProtoSegment(modifier="sharp"),
        ]
        resolution = resolve(segments, ["SEQ"])
        assert [seg.patterns for seg in resolution.segments] == [["up"], ["down"]]
        assert any("moved extra pattern" in line for line in resolution.log)

    def test_multiple_patterns_split_into_or(self):
        segments = [ProtoSegment(patterns=["up", "down"]), ProtoSegment(patterns=["flat"])]
        resolution = resolve(segments, ["SEQ"])
        assert len(resolution.segments) == 3
        assert resolution.operators[0] == "OR"

    def test_dangling_modifier_moves(self):
        segments = [
            ProtoSegment(patterns=["up", "down"]),
            ProtoSegment(modifier="sharp"),
        ]
        resolution = resolve(segments, ["SEQ"])
        assert resolution.segments[1].modifier == "sharp"

    def test_dangling_modifier_dropped_when_no_home(self):
        segments = [ProtoSegment(modifier="sharp")]
        resolution = resolve(segments, [])
        assert not resolution.segments  # nothing left after dropping

    def test_reversed_x_swapped(self):
        segments = [ProtoSegment(patterns=["up"], x_start=8, x_end=4)]
        resolution = resolve(segments, [])
        seg = resolution.segments[0]
        assert (seg.x_start, seg.x_end) == (4, 8)

    def test_reversed_x_reinterpreted_as_y_for_down(self):
        segments = [
            ProtoSegment(patterns=["down"], x_start=8, x_end=0, axis_ambiguous=True)
        ]
        resolution = resolve(segments, [])
        seg = resolution.segments[0]
        assert seg.x_start is None
        assert (seg.y_start, seg.y_end) == (8, 0)

    def test_overlap_becomes_and(self):
        segments = [
            ProtoSegment(patterns=["up"], x_start=4, x_end=8),
            ProtoSegment(patterns=["down"], x_start=6, x_end=10),
        ]
        resolution = resolve(segments, ["SEQ"])
        assert resolution.operators[0] == "AND"

    def test_empty_segments_dropped(self):
        segments = [ProtoSegment(patterns=["up"]), ProtoSegment(), ProtoSegment(patterns=["down"])]
        resolution = resolve(segments, ["SEQ", "SEQ"])
        assert len(resolution.segments) == 2
        assert resolution.operators == ["SEQ"]

    def test_y_conflict_swapped_for_down(self):
        segments = [ProtoSegment(patterns=["down"], y_start=1, y_end=9)]
        resolution = resolve(segments, [])
        seg = resolution.segments[0]
        assert seg.y_start == 9 and seg.y_end == 1


class TestEndToEndNlSearch:
    def test_nl_query_drives_engine(self, tagger):
        import numpy as np

        from repro.engine.executor import ShapeSearchEngine
        from tests.conftest import make_trendline

        rng = np.random.default_rng(3)
        collection = [
            make_trendline(
                np.concatenate([np.linspace(0, 9, 20), np.linspace(9, 1, 20)]), key="peaked"
            ),
            make_trendline(rng.normal(0, 1, 40).cumsum(), key="walk"),
            make_trendline(np.linspace(0, 9, 40), key="rise"),
        ]
        node = parse_natural_language("rising and then falling", tagger=tagger)
        matches = ShapeSearchEngine().rank(collection, node, k=1)
        assert matches[0].key == "peaked"
