"""Tests for summarized statistics and Theorem 5.1 additivity."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.statistics import PrefixStats, SummaryStats

finite = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


def series_strategy(min_size=4, max_size=30):
    return st.lists(finite, min_size=min_size, max_size=max_size)


class TestSummaryStats:
    def test_matches_polyfit(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 1, 40)
        y = 3.0 * x + 1.0 + rng.normal(0, 0.1, 40)
        stats = SummaryStats.of(x, y)
        slope, intercept = np.polyfit(x, y, 1)
        assert stats.slope() == pytest.approx(slope, rel=1e-9)
        assert stats.intercept() == pytest.approx(intercept, rel=1e-9)

    def test_degenerate_slope_is_zero(self):
        stats = SummaryStats.of(np.array([2.0, 2.0]), np.array([1.0, 5.0]))
        assert stats.slope() == 0.0

    @given(series_strategy())
    def test_additivity_theorem(self, values):
        """Theorem 5.1: merged statistics fit the same line as raw points."""
        y = np.asarray(values)
        x = np.linspace(0, 1, len(y))
        split = len(y) // 2
        left = SummaryStats.of(x[:split], y[:split])
        right = SummaryStats.of(x[split:], y[split:])
        merged = left + right
        direct = SummaryStats.of(x, y)
        assert merged.n == direct.n
        assert merged.slope() == pytest.approx(direct.slope(), rel=1e-6, abs=1e-6)
        assert merged.intercept() == pytest.approx(direct.intercept(), rel=1e-6, abs=1e-6)

    @given(series_strategy(min_size=6))
    def test_three_way_merge_associative(self, values):
        y = np.asarray(values)
        x = np.arange(len(y), dtype=float)
        a, b = len(y) // 3, 2 * len(y) // 3
        s1 = SummaryStats.of(x[:a], y[:a])
        s2 = SummaryStats.of(x[a:b], y[a:b])
        s3 = SummaryStats.of(x[b:], y[b:])
        left_first = (s1 + s2) + s3
        right_first = s1 + (s2 + s3)
        assert left_first.slope() == pytest.approx(right_first.slope(), abs=1e-9)


class TestPrefixStats:
    def test_range_equals_direct(self):
        rng = np.random.default_rng(1)
        x = np.arange(20, dtype=float)
        y = rng.normal(0, 1, 20)
        prefix = PrefixStats.from_points(x, y)
        stats = prefix.range(5, 15)
        direct = SummaryStats.of(x[5:15], y[5:15])
        assert stats.slope() == pytest.approx(direct.slope(), abs=1e-9)
        assert stats.n == 10

    def test_scalar_slope_matches_range(self):
        rng = np.random.default_rng(2)
        x = np.arange(30, dtype=float)
        y = rng.normal(0, 1, 30)
        prefix = PrefixStats.from_points(x, y)
        for l, r in [(0, 30), (3, 9), (10, 12)]:
            assert prefix.slope(l, r) == pytest.approx(prefix.range(l, r).slope(), abs=1e-9)

    def test_vectorized_slopes_match_scalar(self):
        rng = np.random.default_rng(3)
        x = np.arange(25, dtype=float)
        y = rng.normal(0, 2, 25)
        prefix = PrefixStats.from_points(x, y)
        ends = np.arange(5, 25)
        vectorized = prefix.slopes_for_ends(2, ends)
        for value, r in zip(vectorized, ends):
            assert value == pytest.approx(prefix.slope(2, int(r)), abs=1e-9)
        starts = np.arange(0, 18)
        vectorized = prefix.slopes_for_starts(starts, 20)
        for value, l in zip(vectorized, starts):
            assert value == pytest.approx(prefix.slope(int(l), 20), abs=1e-9)

    def test_slope_matrix(self):
        rng = np.random.default_rng(4)
        x = np.arange(15, dtype=float)
        y = rng.normal(0, 1, 15)
        prefix = PrefixStats.from_points(x, y)
        starts = np.array([0, 3, 6])
        ends = np.array([9, 12, 15])
        matrix = prefix.slope_matrix(starts, ends)
        for i, l in enumerate(starts):
            for j, r in enumerate(ends):
                assert matrix[i, j] == pytest.approx(prefix.slope(int(l), int(r)), abs=1e-9)

    def test_binned_prefix(self):
        x = np.array([0.0, 0.5, 1.0, 1.5, 2.0, 2.5])
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        bin_index = np.array([0, 0, 1, 1, 2, 2])
        prefix = PrefixStats.from_binned(x, y, bin_index)
        assert prefix.bins == 3
        stats = prefix.range(0, 3)
        direct = SummaryStats.of(x, y)
        assert stats.slope() == pytest.approx(direct.slope(), abs=1e-12)

    def test_empty_range(self):
        prefix = PrefixStats.from_points(np.arange(5.0), np.arange(5.0))
        stats = prefix.range(2, 2)
        assert stats.n == 0
        assert stats.slope() == 0.0

    def test_slopes_pairs_match_scalar_bitwise(self):
        rng = np.random.default_rng(5)
        x = np.arange(30, dtype=float)
        y = rng.normal(0, 1, 30)
        prefix = PrefixStats.from_points(x, y)
        starts = np.arange(0, 20)
        ends = starts + rng.integers(2, 10, 20)
        pairs = prefix.slopes_pairs(starts, ends)
        for value, l, r in zip(pairs, starts, ends):
            assert value == prefix.slope(int(l), int(r))  # exact, not approx

    def test_near_degenerate_denominator_uses_eps_mask(self):
        """Regression: the vectorized path used to divide by a tiny (but
        nonzero) denominator while the scalar path returned 0.0; both
        must apply the same _EPS guard."""
        x = np.array([0.0, 1e-8])
        y = np.array([0.0, 1.0])
        prefix = PrefixStats.from_points(x, y)
        assert prefix.slope(0, 2) == 0.0
        assert prefix.slopes_pairs(np.array([0]), np.array([2]))[0] == 0.0
        assert prefix.slope_matrix(np.array([0]), np.array([2]))[0, 0] == 0.0
        assert prefix.slopes_for_ends(0, np.array([2]))[0] == 0.0
