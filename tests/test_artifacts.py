"""Artifact store + block-batched bounds: round-trip, parity, fallbacks.

Two contracts pinned here:

* **Bitwise fidelity** — an index saved to the artifact store and
  memory-mapped back is the in-memory index bit for bit (packed block,
  layout, witnesses, every query bound), and the block-batched
  ``upper_bounds`` kernel equals the retained scalar ``upper_bound``
  oracle float for float across randomized collections, queries and
  floors.

* **Never a wrong index** — every way an artifact can be bad (missing,
  corrupted, truncated, version-skewed, built from a different table)
  makes ``load_index`` miss, and the engine degrades to a rebuild whose
  results are byte-identical to a storeless run.
"""

import json
import os
import pickle

import numpy as np
import pytest

from repro.algebra import builder as q
from repro.api import ShapeSearch
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.artifacts import (
    ARTIFACT_BUDGET_ENV,
    ARTIFACT_FORMAT,
    artifact_budget,
    artifact_dir,
    load_index,
    prune,
    save_index,
)
from repro.engine.cache import table_fingerprint
from repro.engine.executor import ShapeSearchEngine
from repro.errors import ExecutionError
from repro.engine.shape_index import ShapeIndex, survives_floor

from tests.conftest import make_trendline
from tests.test_shape_index import _signature, _smooth_table

UP_DOWN = q.concat(q.up(), q.down())
PARAMS = VisualParams(z="z", x="x", y="y")

QUERIES = [
    q.concat(q.up(), q.down()),
    q.concat(q.down(), q.flat(), q.up()),
    q.up(),
    q.concat(q.up(sharp=True), q.down()),
]


def _random_collection(rng, count=30):
    """Trendlines with varied bin counts, including unindexable ones."""
    choices = [9, 24, 24, 40, 64, 130]
    trendlines = []
    for index in range(count):
        bins = choices[int(rng.integers(len(choices)))]
        y = rng.normal(0, 1, bins).cumsum()
        trendlines.append(make_trendline(y, key="t{:03d}".format(index)))
    return trendlines


def _compiled(node):
    return ShapeSearchEngine()._compile(node)


class TestBatchedBoundsParity:
    """upper_bounds == the scalar upper_bound oracle, float for float."""

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_parity(self, seed):
        rng = np.random.default_rng(seed)
        index = ShapeIndex.build(_random_collection(rng))
        for node in QUERIES:
            compiled = _compiled(node)
            scalar = np.array(
                [
                    index.upper_bound(i, compiled)
                    for i in range(len(index.entries))
                ]
            )
            batched = index.upper_bounds(compiled)
            assert batched.dtype == np.float64
            assert batched.tobytes() == scalar.tobytes()

    @pytest.mark.parametrize("seed", range(3))
    def test_floored_parity_freezes_like_early_exit(self, seed):
        # With a bounded floor the scalar oracle stops at the first
        # coarse level that fails survives_floor; the batched kernel's
        # alive-mask freeze must return the same coarse float.
        rng = np.random.default_rng(100 + seed)
        index = ShapeIndex.build(_random_collection(rng))
        compiled = _compiled(UP_DOWN)
        finite = index.upper_bounds(compiled)
        finite = finite[np.isfinite(finite)]
        for floor in (-1.0, float(np.median(finite)), 2.0):
            scalar = np.array(
                [
                    index.upper_bound(i, compiled, floor)
                    for i in range(len(index.entries))
                ]
            )
            batched = index.upper_bounds(compiled, floor)
            assert batched.tobytes() == scalar.tobytes()

    def test_shards_concatenate_to_full_pass(self):
        rng = np.random.default_rng(7)
        index = ShapeIndex.build(_random_collection(rng, count=41))
        compiled = _compiled(UP_DOWN)
        full = index.upper_bounds(compiled)
        parts = [
            index.upper_bounds_range(compiled, start, end)
            for start, end in [(0, 13), (13, 14), (14, 41)]
        ]
        assert np.concatenate(parts).tobytes() == full.tobytes()

    def test_empty_index_bounds_are_well_formed(self):
        bounds = ShapeIndex.build([]).upper_bounds(_compiled(UP_DOWN))
        assert bounds.dtype == np.float64
        assert bounds.shape == (0,)

    def test_unindexable_entries_bound_at_inf(self):
        short = [make_trendline(np.arange(5.0), key="s")]
        bounds = ShapeIndex.build(short).upper_bounds(_compiled(UP_DOWN))
        assert bounds.dtype == np.float64
        assert np.isposinf(bounds).all()

    def test_survives_floor_empty_candidates(self):
        verdict = survives_floor(np.zeros(0), 0.5)
        assert verdict.dtype == bool
        assert verdict.shape == (0,)


KEY = ("params-repr", True, None, "float64")


class TestArtifactRoundTrip:
    """save → load is the in-memory index, bit for bit."""

    def _index(self, seed=0, count=30):
        return ShapeIndex.build(
            _random_collection(np.random.default_rng(seed), count)
        )

    def test_bitwise_round_trip(self, tmp_path):
        index = self._index()
        save_index(tmp_path, KEY, index, "fp")
        loaded = load_index(tmp_path, KEY, "fp")
        assert loaded is not None
        values, layout = index.packed()
        lvalues, llayout = loaded.packed()
        assert np.asarray(lvalues).tobytes() == values.tobytes()
        assert llayout == layout
        witnesses = [
            entry.witness if entry is not None else None
            for entry in index.entries
        ]
        assert [
            entry.witness if entry is not None else None
            for entry in loaded.entries
        ] == witnesses
        compiled = _compiled(UP_DOWN)
        assert (
            loaded.upper_bounds(compiled).tobytes()
            == index.upper_bounds(compiled).tobytes()
        )

    def test_loaded_index_extends_like_lineage(self, tmp_path):
        # Persisted witnesses keep extend-don't-rebuild alive across the
        # save/load boundary: unchanged trendlines reuse the mapped
        # entries by object, and the result equals a fresh build bitwise.
        rng = np.random.default_rng(3)
        base = _random_collection(rng, count=12)
        save_index(tmp_path, KEY, ShapeIndex.build(base), "fp")
        loaded = load_index(tmp_path, KEY, "fp")
        grown = base + _random_collection(np.random.default_rng(4), count=4)
        extended = loaded.extended(grown)
        fresh = ShapeIndex.build(grown)
        assert extended.pack()[0].tobytes() == fresh.pack()[0].tobytes()
        reused = sum(
            1
            for old, new in zip(loaded.entries, extended.entries)
            if old is not None and old is new
        )
        assert reused > 0

    def test_empty_index_round_trip(self, tmp_path):
        save_index(tmp_path, KEY, ShapeIndex.build([]), "fp")
        loaded = load_index(tmp_path, KEY, "fp")
        assert loaded is not None
        assert len(loaded) == 0


class TestArtifactFallbacks:
    """Every bad-artifact path misses; none ever serves wrong buckets."""

    def _saved(self, tmp_path):
        index = ShapeIndex.build(
            _random_collection(np.random.default_rng(1), 20)
        )
        save_index(tmp_path, KEY, index, "fp")
        return artifact_dir(tmp_path, KEY)

    def test_missing_artifact(self, tmp_path):
        assert load_index(tmp_path, ("other",), "fp") is None

    def test_fingerprint_mismatch(self, tmp_path):
        self._saved(tmp_path)
        assert load_index(tmp_path, KEY, "other-table") is None

    def test_version_skew(self, tmp_path):
        directory = self._saved(tmp_path)
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["format"] = ARTIFACT_FORMAT + 1
        (directory / "manifest.json").write_text(json.dumps(manifest))
        assert load_index(tmp_path, KEY, "fp") is None

    def test_block_corruption(self, tmp_path):
        directory = self._saved(tmp_path)
        path = directory / "block.f64"
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        assert load_index(tmp_path, KEY, "fp") is None

    def test_block_truncation(self, tmp_path):
        directory = self._saved(tmp_path)
        path = directory / "block.f64"
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        assert load_index(tmp_path, KEY, "fp") is None

    def test_layout_corruption(self, tmp_path):
        directory = self._saved(tmp_path)
        path = directory / "layout.pkl"
        payload = bytearray(path.read_bytes())
        payload[-1] ^= 0xFF
        path.write_bytes(bytes(payload))
        assert load_index(tmp_path, KEY, "fp") is None

    def test_unreadable_manifest(self, tmp_path):
        directory = self._saved(tmp_path)
        (directory / "manifest.json").write_text("{not json")
        assert load_index(tmp_path, KEY, "fp") is None

    def test_layout_hash_mismatch_from_swapped_pickle(self, tmp_path):
        directory = self._saved(tmp_path)
        (directory / "layout.pkl").write_bytes(
            pickle.dumps(([], []), protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert load_index(tmp_path, KEY, "fp") is None


class TestEngineDiskTier:
    """store= end to end: cold processes serve from disk, corruption rebuilds."""

    def test_cold_session_serves_from_disk(self, tmp_path):
        table = _smooth_table()
        baseline = ShapeSearchEngine().run(table, PARAMS, UP_DOWN, k=5)

        store = str(tmp_path / "artifacts")
        warm = ShapeSearchEngine(index=True, store=store)
        first = warm.run(table, PARAMS, UP_DOWN, k=5)
        assert first.stats.index_source == "built"
        assert _signature(baseline) == _signature(first)

        # A fresh engine over a freshly rebuilt table: nothing shared in
        # memory (no table-attached state, no cache, no lineage) — the
        # artifact is the only way to avoid a rebuild.
        cold_table = _smooth_table()
        assert not hasattr(cold_table, "_shape_index_state")
        cold = ShapeSearchEngine(index=True, store=store)
        served = cold.run(cold_table, PARAMS, UP_DOWN, k=5)
        assert served.stats.index_source == "disk"
        assert served.stats.index_bounds == "inline"
        assert "source=disk" in served.plan
        assert _signature(baseline) == _signature(served)

    def test_corrupt_store_degrades_to_rebuild(self, tmp_path):
        table = _smooth_table()
        store = str(tmp_path / "artifacts")
        ShapeSearchEngine(index=True, store=store).run(
            table, PARAMS, UP_DOWN, k=5
        )
        for root, _dirs, files in os.walk(store):
            for name in files:
                if name == "block.f64":
                    path = os.path.join(root, name)
                    payload = bytearray(open(path, "rb").read())
                    payload[0] ^= 0xFF
                    open(path, "wb").write(bytes(payload))
        baseline = ShapeSearchEngine().run(_smooth_table(), PARAMS, UP_DOWN, k=5)
        cold = ShapeSearchEngine(index=True, store=store)
        rebuilt = cold.run(_smooth_table(), PARAMS, UP_DOWN, k=5)
        assert rebuilt.stats.index_source == "built"
        assert _signature(baseline) == _signature(rebuilt)

    def test_append_persists_extended_index(self, tmp_path):
        store = str(tmp_path / "artifacts")
        table = _smooth_table()
        engine = ShapeSearchEngine(index=True, store=store)
        engine.run(table, PARAMS, UP_DOWN, k=5)

        delta = [
            {"z": "g000", "x": 24.0 + i, "y": float(i)} for i in range(4)
        ]
        appended = table.append_rows(delta)
        grown = engine.run(appended, PARAMS, UP_DOWN, k=5)
        assert grown.stats.index_source == "built"  # lineage extension

        # The extended index was persisted under the appended table's
        # fingerprint: a cold session over the same appended content is
        # served from disk.
        cold_table = table.append_rows(delta)
        assert table_fingerprint(cold_table) == table_fingerprint(appended)
        cold = ShapeSearchEngine(index=True, store=store)
        served = cold.run(cold_table, PARAMS, UP_DOWN, k=5)
        assert served.stats.index_source == "disk"
        assert _signature(served) == _signature(grown)

    def test_unwritable_store_never_fails_a_query(self, tmp_path):
        table = _smooth_table()
        baseline = ShapeSearchEngine().run(table, PARAMS, UP_DOWN, k=5)
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        blocked.chmod(0o500)
        try:
            engine = ShapeSearchEngine(index=True, store=str(blocked))
            result = engine.run(table, PARAMS, UP_DOWN, k=5)
        finally:
            blocked.chmod(0o700)
        assert _signature(baseline) == _signature(result)

    def test_session_store_option_and_env_default(self, tmp_path, monkeypatch):
        store = str(tmp_path / "via-option")
        with ShapeSearch(_smooth_table(), index=True, store=store) as session:
            session.prepare(UP_DOWN, z="z", x="x", y="y").run(k=5)
        assert os.path.isdir(store)
        env_store = str(tmp_path / "via-env")
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", env_store)
        assert ShapeSearchEngine().store == env_store
        monkeypatch.delenv("REPRO_ARTIFACT_DIR")
        assert ShapeSearchEngine().store is None


class TestPruneAndBudget:
    """Artifact GC: the byte/age prune pass and its env-var budget knob."""

    def _store_with_entries(self, tmp_path, count=3):
        """A store holding `count` entries with strictly increasing mtimes."""
        store = tmp_path / "artifacts"
        rng = np.random.default_rng(7)
        names = []
        for index in range(count):
            shape_index = ShapeIndex.build(_random_collection(rng, count=12))
            key = ("params-{:02d}".format(index), True, None, "float64")
            path = save_index(store, key, shape_index, "fp{:02d}".format(index))
            names.append(os.path.basename(path))
            # Strictly order recency without sleeping: backdate earlier
            # entries' manifests (save_index writes the manifest last).
            manifest = os.path.join(path, "manifest.json")
            stamp = 1_000_000 + index * 1000
            os.utime(manifest, (stamp, stamp))
        return store, names

    def test_budget_env_parsing(self, monkeypatch):
        monkeypatch.delenv(ARTIFACT_BUDGET_ENV, raising=False)
        assert artifact_budget() is None
        monkeypatch.setenv(ARTIFACT_BUDGET_ENV, "1048576")
        assert artifact_budget() == 1048576
        monkeypatch.setenv(ARTIFACT_BUDGET_ENV, "lots")
        with pytest.raises(ExecutionError):
            artifact_budget()
        monkeypatch.setenv(ARTIFACT_BUDGET_ENV, "-1")
        with pytest.raises(ExecutionError):
            artifact_budget()

    def test_measure_only_pass_removes_nothing(self, tmp_path):
        store, names = self._store_with_entries(tmp_path)
        report = prune(store)
        assert report.examined == len(names)
        assert report.removed == 0 and report.freed_bytes == 0
        assert report.kept_bytes > 0
        assert sorted(os.listdir(store)) == sorted(names)

    def test_bytes_budget_evicts_oldest_first(self, tmp_path):
        store, names = self._store_with_entries(tmp_path)
        sizes = {
            name: sum(
                entry.stat().st_size for entry in (store / name).iterdir()
            )
            for name in names
        }
        total = sum(sizes.values())
        # Budget for exactly the newest two entries: the oldest must go.
        budget = total - sizes[names[0]]
        report = prune(store, max_bytes=budget)
        assert report.removed == 1
        assert report.removed_names == [names[0]]
        assert report.kept_bytes <= budget
        assert sorted(os.listdir(store)) == sorted(names[1:])

    def test_zero_budget_clears_the_store(self, tmp_path):
        store, names = self._store_with_entries(tmp_path)
        report = prune(store, max_bytes=0)
        assert report.removed == len(names)
        assert report.kept_bytes == 0
        assert os.listdir(store) == []

    def test_age_limit_drops_expired_entries(self, tmp_path):
        store, names = self._store_with_entries(tmp_path)
        # All manifests are backdated to ~1970+11.5 days; one hour of
        # allowed age expires every entry.
        report = prune(store, max_age_s=3600.0)
        assert report.removed == len(names)
        assert os.listdir(store) == []

    def test_foreign_directories_are_never_touched(self, tmp_path):
        store, _names = self._store_with_entries(tmp_path)
        foreign = store / "not-an-artifact"
        foreign.mkdir()
        (foreign / "precious.txt").write_text("user data")
        report = prune(store, max_bytes=0)
        assert "not-an-artifact" not in report.removed_names
        assert (foreign / "precious.txt").read_text() == "user data"

    def test_missing_root_is_a_quiet_no_op(self, tmp_path):
        report = prune(tmp_path / "never-created")
        assert report.examined == 0 and report.removed == 0


class TestIndexReason:
    """ExecutionStats.index_reason: why a build happened, stated explicitly."""

    def test_no_store_configured(self):
        _res, stats = ShapeSearchEngine(index=True).execute_with_stats(
            _smooth_table(), PARAMS, UP_DOWN, k=5
        )
        assert stats.index_source == "built"
        assert stats.index_reason == "no-store"

    def test_store_miss_then_disk_hit_clears_reason(self, tmp_path):
        store = str(tmp_path / "artifacts")
        _res, cold = ShapeSearchEngine(index=True, store=store).execute_with_stats(
            _smooth_table(), PARAMS, UP_DOWN, k=5
        )
        assert cold.index_source == "built"
        assert cold.index_reason == "store-miss"
        _res, warm = ShapeSearchEngine(index=True, store=store).execute_with_stats(
            _smooth_table(), PARAMS, UP_DOWN, k=5
        )
        assert warm.index_source == "disk"
        assert warm.index_reason is None

    def test_unwritable_store_reason_and_single_warning(self, tmp_path, monkeypatch):
        from repro.engine import executor as executor_module

        monkeypatch.setattr(executor_module, "_WARNED_STORES", {})
        # A regular file where the store root should be: every save
        # raises NotADirectoryError, even when the suite runs as root
        # (which a permission-bit store would not).
        blocked = tmp_path / "blocked"
        blocked.write_text("not a directory")
        engine = ShapeSearchEngine(index=True, store=str(blocked))
        with pytest.warns(RuntimeWarning, match="store-unwritable"):
            _res, stats = engine.execute_with_stats(
                _smooth_table(), PARAMS, UP_DOWN, k=5
            )
        assert stats.index_source == "built"
        assert stats.index_reason == "store-unwritable"
        # Second query against the same store: reason persists but the
        # warning fires once per store, not once per query.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            _res, again = engine.execute_with_stats(
                _smooth_table(), PARAMS, UP_DOWN, k=5
            )
        assert again.index_reason == "store-unwritable"

    def test_memory_source_has_no_reason(self):
        engine = ShapeSearchEngine(index=True)
        table = _smooth_table()
        engine.run(table, PARAMS, UP_DOWN, k=5)
        _res, stats = engine.execute_with_stats(table, PARAMS, UP_DOWN, k=5)
        assert stats.index_source == "memory"
        assert stats.index_reason is None
