"""Property tests for the DP suffix re-solve (repro.engine.dynamic).

``solve_query_extend`` must be *byte-identical* to a cold solve — both
the matrix kernel it extends and the retained loop-kernel oracle — on
every input, whether or not the retained state was reusable.  Reuse is
gated by :func:`trendline_extends`: the state seeds the fill only when
the extended trendline's history is bitwise unchanged, which these tests
construct by truncating one full trendline (a genuine streaming prefix).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import builder as q
from repro.engine import dynamic
from repro.engine.chains import compile_query
from repro.engine.dynamic import solve_query, solve_query_extend
from repro.engine.statistics import PrefixStats
from repro.engine.trendline import Trendline, trendline_extends

from tests.conftest import make_trendline

UP_DOWN = compile_query(q.concat(q.up(), q.down()))
UP_DOWN_UP = compile_query(q.concat(q.up(), q.down(), q.up()))


def truncate(trendline: Trendline, n_bins: int) -> Trendline:
    """The first ``n_bins`` of a trendline, sharing its exact bytes.

    Models a genuine streaming prefix: every value the recurrence could
    read is bitwise identical to the extended trendline's history (the
    conftest helper has one bin per point, so points truncate with bins).
    """
    p = trendline.prefix
    n = n_bins + 1
    prefix = PrefixStats.from_cumulative(
        p.count[:n], p.sx[:n], p.sy[:n], p.sxy[:n], p.sxx[:n]
    )
    return Trendline(
        key=trendline.key,
        x=trendline.x[:n_bins],
        y=trendline.y[:n_bins],
        bin_x=trendline.bin_x[:n_bins],
        bin_y=trendline.bin_y[:n_bins],
        norm_bin_y=trendline.norm_bin_y[:n_bins],
        prefix=prefix,
        y_mean=trendline.y_mean,
        y_std=trendline.y_std,
        offset=trendline.offset,
    )


def _signature(result):
    if result is None:
        return None
    return (
        result.score,
        result.chain_index,
        tuple(
            (p.seg_index, p.start, p.end, p.score, p.slope)
            for p in result.solution.placements
        ),
    )


class TestTrendlineExtends:
    def test_truncation_extends(self):
        full = make_trendline(np.sin(np.arange(40) / 5.0))
        assert trendline_extends(truncate(full, 25), full)
        assert truncate(full, 25).n_bins == 25

    def test_rebuilt_prefix_does_not_extend(self):
        """A rebuilt (re-normalized) trendline fails the gate."""
        y = np.sin(np.arange(40) / 5.0)
        base = make_trendline(y[:25])  # z-scored over the prefix only
        full = make_trendline(y)
        assert not trendline_extends(base, full)

    def test_shorter_never_extends_longer(self):
        full = make_trendline(np.sin(np.arange(40) / 5.0))
        assert not trendline_extends(full, truncate(full, 25))

    def test_prefix_stats_extends_is_bitwise(self):
        full = make_trendline(np.arange(30.0))
        base = truncate(full, 20)
        assert full.prefix.extends(base.prefix)
        perturbed = truncate(full, 20)
        sy = perturbed.prefix.sy.copy()  # the slice aliases full's buffer
        sy[3] += 1e-9
        perturbed.prefix.sy = sy
        assert not full.prefix.extends(perturbed.prefix)


class TestSuffixResolve:
    @settings(max_examples=25)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        total=st.integers(min_value=8, max_value=48),
        data=st.data(),
    )
    def test_extend_equals_cold_and_oracle(self, seed, total, data):
        rng = np.random.default_rng(seed)
        full = make_trendline(rng.normal(0, 1, total).cumsum())
        base_bins = data.draw(
            st.integers(min_value=4, max_value=total), label="base_bins"
        )
        query = data.draw(st.sampled_from([UP_DOWN, UP_DOWN_UP]), label="query")
        base = truncate(full, base_bins)
        _, state = solve_query_extend(base, query)
        extended, _ = solve_query_extend(full, query, state=state)
        cold = solve_query(full, query)
        oracle = solve_query(full, query, kernel="loop")
        assert _signature(extended) == _signature(cold)
        assert _signature(extended) == _signature(oracle)

    def test_suffix_fill_actually_skips_work(self, monkeypatch):
        """When the state is reusable, only end bins past the old hi fill."""
        calls = []
        original = dynamic._matrix_fill

        def spy(trendline, units, lo, hi, min_len, context, opt, split, from_end):
            calls.append((lo, hi, from_end))
            return original(
                trendline, units, lo, hi, min_len, context, opt, split, from_end
            )

        monkeypatch.setattr(dynamic, "_matrix_fill", spy)
        rng = np.random.default_rng(3)
        # Both lengths sit at run_min_length's cap, so min_len is equal
        # and the retained layers stay valid — the genuine reuse regime.
        full = make_trendline(rng.normal(0, 1, 120).cumsum())
        base = truncate(full, 100)
        _, state = solve_query_extend(base, UP_DOWN)
        solve_query_extend(full, UP_DOWN, state=state)
        assert calls[0][2] == calls[0][0]       # cold solve fills from lo
        lo, hi, from_end = calls[-1]
        assert from_end > lo                    # the re-solve resumed mid-way
        assert from_end == base.n_bins + 1

    def test_unusable_state_falls_back_to_cold_fill(self):
        rng = np.random.default_rng(4)
        a = make_trendline(rng.normal(0, 1, 30).cumsum(), key="a")
        b = make_trendline(rng.normal(0, 1, 34).cumsum(), key="b")
        _, state = solve_query_extend(a, UP_DOWN)
        result, _ = solve_query_extend(b, UP_DOWN, state=state)
        assert _signature(result) == _signature(solve_query(b, UP_DOWN))

    def test_min_len_change_falls_back(self):
        """A growth that changes run_min_length cannot reuse per-layer
        tables; the solver must detect it and still match cold."""
        rng = np.random.default_rng(5)
        full = make_trendline(rng.normal(0, 1, 120).cumsum())
        base = truncate(full, 8)  # tiny prefix: different min_len regime
        _, state = solve_query_extend(base, UP_DOWN_UP)
        result, _ = solve_query_extend(full, UP_DOWN_UP, state=state)
        assert _signature(result) == _signature(solve_query(full, UP_DOWN_UP))

    def test_loop_kernel_requests_bypass_state(self):
        rng = np.random.default_rng(6)
        full = make_trendline(rng.normal(0, 1, 30).cumsum())
        result, state = solve_query_extend(full, UP_DOWN, kernel="loop")
        assert state is None
        assert _signature(result) == _signature(
            solve_query(full, UP_DOWN, kernel="loop")
        )

    def test_chained_extensions(self):
        """Repeated appends reuse each step's state; all steps match cold."""
        rng = np.random.default_rng(9)
        full = make_trendline(rng.normal(0, 1, 60).cumsum())
        state = None
        for bins in (12, 25, 41, 60):
            prefix = truncate(full, bins) if bins < 60 else full
            result, state = solve_query_extend(prefix, UP_DOWN_UP, state=state)
            assert _signature(result) == _signature(
                solve_query(prefix, UP_DOWN_UP)
            )


class TestTailStateStore:
    def test_store_reuse_is_identity_checked(self):
        from repro.engine import pipeline

        rng = np.random.default_rng(11)
        full = make_trendline(rng.normal(0, 1, 30).cumsum(), key="k")
        base = truncate(full, 20)
        first = pipeline._solve_tail_dp(base, UP_DOWN, "k", None)
        second = pipeline._solve_tail_dp(full, UP_DOWN, "k", None)
        assert _signature(second) == _signature(solve_query(full, UP_DOWN))
        assert _signature(first) == _signature(solve_query(base, UP_DOWN))
        # A different compiled object with a recycled-looking key must
        # not hit the stale entry.
        other = compile_query(q.concat(q.up(), q.down()))
        third = pipeline._solve_tail_dp(full, other, "k", None)
        assert _signature(third) == _signature(solve_query(full, other))

    def test_store_is_bounded(self):
        from repro.engine import pipeline

        rng = np.random.default_rng(12)
        with pipeline._TAIL_STATES_LOCK:
            pipeline._TAIL_STATES.clear()
        for index in range(pipeline._MAX_TAIL_STATES + 10):
            t = make_trendline(rng.normal(0, 1, 10).cumsum(), key=index)
            pipeline._solve_tail_dp(t, UP_DOWN, index, None)
        with pipeline._TAIL_STATES_LOCK:
            assert len(pipeline._TAIL_STATES) <= pipeline._MAX_TAIL_STATES
            pipeline._TAIL_STATES.clear()
