"""Deprecated shims: warning discipline and seed-era result equivalence.

The old one-shot entry points (``ShapeSearch.search``/``search_many``,
``ShapeSearchEngine.execute``/``execute_many``) survive as thin shims:
they emit :class:`ShapeSearchDeprecationWarning` and return ResultSets
whose order, scores and tie-breaks are byte-identical to the seed-era
list results.  The CI ``deprecations`` job runs the whole suite with
this category escalated to an error, so these are the only tests allowed
to touch the shims — and they must assert the warning explicitly.
"""

import warnings

import numpy as np
import pytest

from repro import ResultSet, ShapeSearch, ShapeSearchDeprecationWarning
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.executor import ShapeSearchEngine
from repro.parser import parse

PARAMS = VisualParams(z="z", x="x", y="y")


def _table(groups=8, length=25, seed=5):
    rng = np.random.default_rng(seed)
    zs, xs, ys = [], [], []
    for g in range(groups):
        values = rng.normal(0, 1, length).cumsum()
        for i, v in enumerate(values):
            zs.append("g{:02d}".format(g))
            xs.append(float(i))
            ys.append(float(v))
    return Table.from_arrays(
        z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys)
    )


def _sig(matches):
    return [
        (
            m.key,
            m.score,
            tuple((p.start, p.end, p.score) for p in m.placements),
        )
        for m in matches
    ]


class TestWarningDiscipline:
    def test_category_is_a_deprecation_warning(self):
        assert issubclass(ShapeSearchDeprecationWarning, DeprecationWarning)

    def test_session_search_warns(self):
        session = ShapeSearch(_table())
        with pytest.warns(ShapeSearchDeprecationWarning, match="prepare"):
            session.search("[p=up]", z="z", x="x", y="y", k=1)

    def test_session_search_many_warns(self):
        session = ShapeSearch(_table())
        with pytest.warns(ShapeSearchDeprecationWarning, match="submit_many"):
            session.search_many(["[p=up]"], z="z", x="x", y="y", k=1)

    def test_engine_execute_warns(self):
        with pytest.warns(ShapeSearchDeprecationWarning, match="run"):
            ShapeSearchEngine().execute(_table(), PARAMS, parse("[p=up]"), k=1)

    def test_engine_execute_many_warns(self):
        with pytest.warns(ShapeSearchDeprecationWarning, match="run_many"):
            ShapeSearchEngine().execute_many(
                _table(), PARAMS, [parse("[p=up]")], k=1
            )

    def test_warning_escalates_under_error_filter(self):
        # What the CI deprecations job enforces suite-wide.
        session = ShapeSearch(_table())
        with warnings.catch_warnings():
            warnings.simplefilter("error", ShapeSearchDeprecationWarning)
            with pytest.raises(ShapeSearchDeprecationWarning):
                session.search("[p=up]", z="z", x="x", y="y", k=1)

    def test_new_api_does_not_warn(self):
        session = ShapeSearch(_table())
        with warnings.catch_warnings():
            warnings.simplefilter("error", ShapeSearchDeprecationWarning)
            session.prepare("[p=up]", z="z", x="x", y="y").run(k=1)
            session.engine.run(session.table, PARAMS, parse("[p=up]"), k=1)
            session.engine.run_many(session.table, PARAMS, [parse("[p=up]")], k=1)
            session.search_sketch(
                [(float(i), float(i)) for i in range(20)], z="z", x="x", y="y", k=1
            )


class TestShimEquivalence:
    """Shim results are byte-identical to the non-deprecated paths."""

    @pytest.mark.parametrize("query", ["[p=up][p=down]", "[p=up,m={2,}]"])
    def test_search_matches_prepared_run(self, query):
        session = ShapeSearch(_table())
        with pytest.warns(ShapeSearchDeprecationWarning):
            old = session.search(query, z="z", x="x", y="y", k=4)
        new = session.prepare(query, z="z", x="x", y="y").run(k=4)
        assert isinstance(old, ResultSet)
        assert _sig(old) == _sig(new)

    def test_search_many_matches_run_many(self):
        session = ShapeSearch(_table())
        queries = ["[p=up][p=down]", "[p=down][p=up]"]
        with pytest.warns(ShapeSearchDeprecationWarning):
            old = session.search_many(queries, z="z", x="x", y="y", k=3)
        nodes = [parse(text) for text in queries]
        new = session.engine.run_many(session.table, PARAMS, nodes, k=3)
        assert [_sig(result) for result in old] == [_sig(result) for result in new]

    @pytest.mark.parametrize("workers,backend", [(1, "thread"), (3, "thread"), (2, "process")])
    def test_execute_matches_run_across_backends(self, workers, backend):
        table = _table()
        query = parse("[p=up][p=down]")
        with ShapeSearchEngine(workers=workers, backend=backend) as engine:
            with pytest.warns(ShapeSearchDeprecationWarning):
                old = engine.execute(table, PARAMS, query, k=4)
            new = engine.run(table, PARAMS, query, k=4)
            assert _sig(old) == _sig(new)

    def test_execute_result_is_sequence_compatible(self):
        # The seed-era contract: callers treated the return as List[Match].
        engine = ShapeSearchEngine()
        with pytest.warns(ShapeSearchDeprecationWarning):
            result = engine.execute(_table(), PARAMS, parse("[p=up]"), k=3)
        as_list = list(result)
        assert result == as_list
        assert len(result) == 3
        assert result[0].key == as_list[0].key
        assert [m.key for m in result] == [m.key for m in as_list]

    def test_shims_still_update_last_stats(self):
        # Seed-era code inspected engine.last_stats after execute().
        engine = ShapeSearchEngine()
        with pytest.warns(ShapeSearchDeprecationWarning):
            result = engine.execute(_table(), PARAMS, parse("[p=up]"), k=2)
        assert engine.last_stats is result.stats
        session = ShapeSearch(_table())
        with pytest.warns(ShapeSearchDeprecationWarning):
            result = session.search("[p=up]", z="z", x="x", y="y", k=2)
        assert session.engine.last_stats is result.stats

    def test_tie_breaks_preserved(self):
        # Constant series tie on score; the shim must break ties exactly
        # like the new path (score desc, then str(key) asc presentation).
        zs, xs, ys = [], [], []
        for key in ("b", "a", "c"):
            for i in range(10):
                zs.append(key)
                xs.append(float(i))
                ys.append(float(i))
        table = Table.from_arrays(
            z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys)
        )
        engine = ShapeSearchEngine()
        with pytest.warns(ShapeSearchDeprecationWarning):
            old = engine.execute(table, PARAMS, parse("[p=up]"), k=3)
        new = engine.run(table, PARAMS, parse("[p=up]"), k=3)
        assert [m.key for m in old] == [m.key for m in new] == ["a", "b", "c"]
