"""Top-k correctness of the optimized paths against the plain engine.

The two-stage collective pruning driver (§6.3) and the push-down
optimizations (§5.4) are *exactness-preserving*: pruning discards a
candidate only when its score upper bound is provably below the current
top-k floor, and push-down only skips work the query provably cannot
use.  These tests assert that on the synthetic evaluation suites both
optimized paths return the same top-k set — same keys, same scores — as
the unoptimized engine, catching eager-discard/pruning false negatives.
"""

import pytest

from repro.data.visual_params import VisualParams
from repro.datasets.suites import SUITES, suite_table, suite_trendlines
from repro.engine.chains import compile_query
from repro.engine.executor import ShapeSearchEngine
from repro.parser import parse

#: Scaled-down suite sizes so the whole module stays CI-friendly.
MAX_VIZ = 40
MAX_LEN = 120

PRUNING_CASES = [
    (name, text)
    for name in ("weather", "worms", "realestate")
    for text in SUITES[name].fuzzy_queries[:2]
]


def _result_set(matches):
    return sorted((match.key, round(match.score, 9)) for match in matches)


@pytest.mark.parametrize("suite,query_text", PRUNING_CASES)
def test_pruning_matches_unoptimized_top_k(suite, query_text):
    trendlines = suite_trendlines(suite, max_visualizations=MAX_VIZ, max_length=MAX_LEN)
    query = compile_query(parse(query_text))
    baseline = ShapeSearchEngine(enable_pushdown=False, enable_pruning=False).rank(
        trendlines, query, k=10
    )
    pruned_engine = ShapeSearchEngine(enable_pruning=True)
    pruned, stats = pruned_engine.rank_with_stats(trendlines, query, k=10)
    assert _result_set(pruned) == _result_set(baseline)
    assert stats.pruning is not None
    # The driver really exercised the two-stage machinery.
    assert stats.pruning.sampled > 0
    assert stats.pruning.completed + stats.pruning.pruned <= stats.candidates


@pytest.mark.parametrize(
    "suite,query_text",
    [
        ("weather", "[p=down,x.s=0,x.e=30][p=up,x.s=30,x.e=90]"),
        ("worms", "[p=down,x.s=20,x.e=60]"),
        ("50words", "[p=up,x.s=10,x.e=50][p=down,x.s=60,x.e=100]"),
    ],
)
def test_pushdown_matches_unoptimized_top_k(suite, query_text):
    table = suite_table(suite, max_visualizations=25, max_length=100)
    params = VisualParams(z="z", x="x", y="y")
    node = parse(query_text)
    with_pushdown = ShapeSearchEngine(enable_pushdown=True).run(
        table, params, node, k=8
    )
    without = ShapeSearchEngine(enable_pushdown=False).run(table, params, node, k=8)
    # Keys must agree exactly; keep-span trimming (push-down (c)) changes
    # the float accumulation order, so scores agree to ~1e-12, not bitwise.
    assert {m.key for m in with_pushdown} == {m.key for m in without}
    on_scores = {m.key: m.score for m in with_pushdown}
    for match in without:
        assert match.score == pytest.approx(on_scores[match.key], abs=1e-9)


def test_pruning_and_pushdown_together_fuzzy():
    """Both flags on at once: fuzzy queries take the pruning path."""
    trendlines = suite_trendlines("weather", max_visualizations=MAX_VIZ, max_length=MAX_LEN)
    query = compile_query(parse(SUITES["weather"].fuzzy_queries[0]))
    baseline = ShapeSearchEngine(enable_pushdown=False, enable_pruning=False).rank(
        trendlines, query, k=10
    )
    optimized = ShapeSearchEngine(enable_pushdown=True, enable_pruning=True).rank(
        trendlines, query, k=10
    )
    assert _result_set(optimized) == _result_set(baseline)


def test_parallel_pruning_matches_unoptimized_top_k():
    """Sharded pruning must stay exact too (per-shard floors are local)."""
    trendlines = suite_trendlines("weather", max_visualizations=MAX_VIZ, max_length=MAX_LEN)
    query = compile_query(parse(SUITES["weather"].fuzzy_queries[0]))
    baseline = ShapeSearchEngine(enable_pushdown=False, enable_pruning=False).rank(
        trendlines, query, k=10
    )
    with ShapeSearchEngine(enable_pruning=True, workers=3) as engine:
        optimized = engine.rank(trendlines, query, k=10)
    assert _result_set(optimized) == _result_set(baseline)
