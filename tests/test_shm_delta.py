"""Tests for delta-segment publishing (TableDeltaHandle, acquire_append).

The streaming transport: ``append_rows`` ships only the new row range as
a chained segment; workers reconstruct the extended table by
concatenating the delta onto their resident base.  Every fallback path
(widened dtype, evicted base, deep chain) must produce a plain full
export and never a wrong table.
"""

import numpy as np
import pytest

from repro.algebra import builder as q
from repro.data.table import Table
from repro.engine import shm
from repro.engine.cache import table_fingerprint
from repro.engine.chains import compile_query

QUERY = compile_query(q.concat(q.up(), q.down()))


def _table(rows=6, with_object=True):
    columns = {
        "z": np.array(["a", "b"] * (rows // 2), dtype=object),
        "x": np.arange(float(rows)),
        "n": np.arange(rows),
    }
    if not with_object:
        columns.pop("z")
    return Table.from_arrays(**columns)


def _simulate_worker(handle):
    """Resolve like a pool worker: bypass the publisher's object registry.

    Returns an *owning copy* of the resolved table: the worker-store
    entry (whose attachment keeps the shared mapping alive) is dropped
    on the way out so tests stay isolated, which would otherwise leave
    the zero-copy views dangling.
    """
    removed = {}
    for token in shm.delta_chain_tokens(handle):
        if token in shm._LOCAL:
            removed[token] = shm._LOCAL.pop(token)
    try:
        resolved = shm.resolve_table(handle)
        return Table.from_arrays(**{
            name: np.array(resolved.column(name), copy=True)
            for name in resolved.column_names
        })
    finally:
        shm._LOCAL.update(removed)
        for token in shm.delta_chain_tokens(handle):
            shm._WORKER_STORE.pop(token, None)


class TestDeltaChain:
    def test_acquire_append_publishes_delta(self):
        session = shm.ShmSession()
        try:
            base = _table(6)
            grown = base.append_rows(
                [{"z": "c", "x": 6.0, "n": 6}, {"z": "a", "x": 7.0, "n": 7}]
            )
            session.table_handle(base)
            handle, query_ref, tokens = session.acquire_append(grown, base, QUERY)
            try:
                assert isinstance(handle, shm.TableDeltaHandle)
                assert handle.base_rows == 6
                # base + delta + query all pinned
                assert len(tokens) == 3
                resolved = _simulate_worker(handle)
                assert len(resolved) == 8
                assert resolved.column("z").tolist() == [
                    "a", "b", "a", "b", "a", "b", "c", "a"
                ]
                assert resolved.column("x").tolist() == grown.column("x").tolist()
                assert table_fingerprint(resolved) == table_fingerprint(grown)
            finally:
                session.unpin(*tokens)
        finally:
            session.close()

    def test_chained_deltas_resolve(self):
        session = shm.ShmSession()
        try:
            table = _table(4)
            session.table_handle(table)
            handles = []
            for step in range(3):
                base = table
                table = table.append_rows(
                    [{"z": "s{}".format(step), "x": 10.0 + step, "n": 10 + step}]
                )
                handle, _, tokens = session.acquire_append(table, base, QUERY)
                handles.append((handle, tokens))
            final_handle = handles[-1][0]
            assert shm._delta_depth(final_handle) == 3
            resolved = _simulate_worker(final_handle)
            assert len(resolved) == 7
            assert resolved.column("z").tolist()[-3:] == ["s0", "s1", "s2"]
            for _, tokens in handles:
                session.unpin(*tokens)
        finally:
            session.close()

    def test_depth_cap_forces_full_publish(self):
        session = shm.ShmSession()
        try:
            table = _table(4)
            session.table_handle(table)
            handle = None
            for step in range(shm.ShmSession.MAX_DELTA_CHAIN + 2):
                base = table
                table = table.append_rows([{"z": "x", "x": 50.0 + step, "n": step}])
                handle, _, tokens = session.acquire_append(table, base, QUERY)
                session.unpin(*tokens)
            assert shm._delta_depth(handle) <= shm.ShmSession.MAX_DELTA_CHAIN
        finally:
            session.close()


class TestDeltaFallbacks:
    def test_dtype_widening_falls_back_to_full_export(self):
        session = shm.ShmSession()
        try:
            base = _table(6)
            session.table_handle(base)
            widened = base.append_rows([{"z": "w", "x": 6.0, "n": 6.5}])
            assert widened.column("n").dtype != base.column("n").dtype
            handle, _, tokens = session.acquire_append(widened, base, QUERY)
            try:
                assert not isinstance(handle, shm.TableDeltaHandle)
                resolved = _simulate_worker(handle)
                assert resolved.column("n").tolist() == widened.column("n").tolist()
            finally:
                session.unpin(*tokens)
        finally:
            session.close()

    def test_no_published_base_falls_back(self):
        session = shm.ShmSession()
        try:
            base = _table(6)  # never published
            grown = base.append_rows([{"z": "c", "x": 6.0, "n": 6}])
            handle, _, tokens = session.acquire_append(grown, base, QUERY)
            try:
                assert not isinstance(handle, shm.TableDeltaHandle)
            finally:
                session.unpin(*tokens)
        finally:
            session.close()

    def test_none_base_falls_back(self):
        session = shm.ShmSession()
        try:
            grown = _table(6)
            handle, _, tokens = session.acquire_append(grown, None, QUERY)
            try:
                assert not isinstance(handle, shm.TableDeltaHandle)
            finally:
                session.unpin(*tokens)
        finally:
            session.close()

    def test_evicted_base_falls_back(self):
        session = shm.ShmSession()
        try:
            base = _table(6)
            session.table_handle(base)
            # Churn the LRU until the base's segment is evicted.
            for index in range(shm.ShmSession.MAX_TABLES + 2):
                session.table_handle(
                    Table.from_arrays(x=np.arange(3.0) + 100 * index)
                )
            grown = base.append_rows([{"z": "c", "x": 6.0, "n": 6}])
            handle, _, tokens = session.acquire_append(grown, base, QUERY)
            try:
                assert not isinstance(handle, shm.TableDeltaHandle)
                assert len(_simulate_worker(handle)) == 7
            finally:
                session.unpin(*tokens)
        finally:
            session.close()

    def test_repeat_acquire_reuses_published_delta(self):
        session = shm.ShmSession()
        try:
            base = _table(6)
            session.table_handle(base)
            grown = base.append_rows([{"z": "c", "x": 6.0, "n": 6}])
            first, _, tokens_a = session.acquire_append(grown, base, QUERY)
            second, _, tokens_b = session.acquire_append(grown, base, QUERY)
            assert second is first  # memoized by token, chain intact
            session.unpin(*tokens_a)
            session.unpin(*tokens_b)
        finally:
            session.close()


class TestDeltaPins:
    def test_chain_tokens_newest_first(self):
        session = shm.ShmSession()
        try:
            base = _table(4)
            root = session.table_handle(base)
            grown = base.append_rows([{"z": "c", "x": 4.0, "n": 4}])
            handle, _, tokens = session.acquire_append(grown, base, QUERY)
            try:
                chain = shm.delta_chain_tokens(handle)
                assert chain[0] == handle.token
                assert chain[-1] == root.token
                assert shm.delta_chain_tokens(root) == [root.token]
            finally:
                session.unpin(*tokens)
        finally:
            session.close()

    def test_pinned_chain_survives_lru_churn(self):
        session = shm.ShmSession()
        try:
            base = _table(4)
            session.table_handle(base)
            grown = base.append_rows([{"z": "c", "x": 4.0, "n": 4}])
            handle, _, tokens = session.acquire_append(grown, base, QUERY)
            try:
                for index in range(shm.ShmSession.MAX_TABLES + 2):
                    session.table_handle(
                        Table.from_arrays(x=np.arange(3.0) + 1000 * index)
                    )
                # Pinned segments may leave the LRU but must stay
                # attachable until unpinned.
                resolved = _simulate_worker(handle)
                assert len(resolved) == 5
            finally:
                session.unpin(*tokens)
        finally:
            session.close()
