"""Tests for the simulated study harness (Tables 8/10, Figure 9a)."""

import pytest

from repro.study.harness import run_method, run_study
from repro.study.metrics import kth_score_deviation, study_accuracy, topk_overlap
from repro.study.tasks import TASK_CODES, build_tasks


@pytest.fixture(scope="module")
def tasks():
    return build_tasks(seed=42, length=90, distractors=12)


class TestMetrics:
    def test_study_accuracy(self):
        relevance = {"a": 5.0, "b": 3.0, "c": 0.0}
        assert study_accuracy(["a", "b"], relevance, k=2) == pytest.approx(100.0)
        assert study_accuracy(["a", "c"], relevance, k=2) == pytest.approx(100 * 5 / 8)
        assert study_accuracy([], relevance, k=2) == 0.0

    def test_topk_overlap(self):
        assert topk_overlap(["a", "b"], ["a", "b"]) == 100.0
        assert topk_overlap(["a", "x"], ["a", "b"]) == 50.0
        assert topk_overlap([], []) == 0.0

    def test_kth_score_deviation(self):
        assert kth_score_deviation([0.9, 0.8], [0.9, 0.8]) == pytest.approx(0.0)
        assert kth_score_deviation([0.9, 0.6], [0.9, 0.8]) > 0


class TestTasks:
    def test_all_seven_categories(self, tasks):
        assert [task.code for task in tasks] == list(TASK_CODES)

    def test_ground_truth_sane(self, tasks):
        for task in tasks:
            relevant = [key for key, score in task.relevance.items() if score >= 5.0]
            assert len(relevant) >= 3, task.code
            assert task.best_achievable() > 0

    def test_queries_parse(self, tasks):
        from repro.parser import parse

        for task in tasks:
            parse(task.query)

    def test_trendline_keys_match_relevance(self, tasks):
        for task in tasks:
            keys = {tl.key for tl in task.trendlines}
            assert set(task.relevance) == keys


class TestHarness:
    def test_run_method_unknown(self, tasks):
        with pytest.raises(ValueError):
            run_method(tasks[0], "oracle")

    def test_shapesearch_beats_value_measures_on_blurry_tasks(self, tasks):
        """The §7.3 headline: algebra scoring > DTW/Euclidean on average."""
        subset = [task for task in tasks if task.code in ("SQ", "SP", "WS", "MXY", "CS")]
        result = run_study(
            methods=("shapesearch-dp", "dtw", "euclidean"), tasks=subset
        )
        shapesearch = result.method_average("shapesearch-dp")
        assert shapesearch >= result.method_average("dtw")
        assert shapesearch >= result.method_average("euclidean")
        assert shapesearch >= 75.0

    def test_segment_tree_close_to_dp_on_tasks(self, tasks):
        subset = [task for task in tasks if task.code in ("SQ", "CS")]
        result = run_study(methods=("shapesearch-dp", "shapesearch-st"), tasks=subset)
        for code in ("SQ", "CS"):
            dp = result.accuracy[code]["shapesearch-dp"]
            st = result.accuracy[code]["shapesearch-st"]
            assert st >= 0.8 * dp

    def test_exact_trend_task_favours_value_measures_or_ties(self, tasks):
        """ET is the task where sketch/VQS measures are competitive (§7.2)."""
        subset = [task for task in tasks if task.code == "ET"]
        result = run_study(methods=("dtw", "euclidean"), tasks=subset)
        assert max(result.accuracy["ET"].values()) >= 60.0
