"""Tests for the from-scratch linear-chain CRF (paper §4)."""

import numpy as np
import pytest

from repro.nlp.corpus import build_corpus
from repro.nlp.crf import LinearChainCRF
from repro.nlp.features import extract_features


def _toy_data():
    """Tiny separable task: label A after 'a'-features, B after 'b'."""
    sequences, labels = [], []
    patterns = [
        (["fa", "fb", "fa"], ["A", "B", "A"]),
        (["fb", "fb"], ["B", "B"]),
        (["fa", "fa", "fb"], ["A", "A", "B"]),
        (["fb", "fa"], ["B", "A"]),
    ]
    for features, gold in patterns:
        sequences.append([[name] for name in features])
        labels.append(gold)
    return sequences, labels


class TestToyLearning:
    def test_learns_separable_emissions(self):
        sequences, labels = _toy_data()
        model = LinearChainCRF(["A", "B"], l2=0.01, max_iterations=50)
        model.fit(sequences, labels)
        assert model.predict([["fa"], ["fb"], ["fa"]]) == ["A", "B", "A"]

    def test_unknown_features_do_not_crash(self):
        sequences, labels = _toy_data()
        model = LinearChainCRF(["A", "B"]).fit(sequences, labels)
        prediction = model.predict([["unseen-feature"], ["fb"]])
        assert len(prediction) == 2

    def test_empty_sequence(self):
        sequences, labels = _toy_data()
        model = LinearChainCRF(["A", "B"]).fit(sequences, labels)
        assert model.predict([]) == []

    def test_predict_before_fit_raises(self):
        model = LinearChainCRF(["A", "B"])
        with pytest.raises(RuntimeError):
            model.predict([["fa"]])

    def test_mismatched_training_input(self):
        model = LinearChainCRF(["A"])
        with pytest.raises(ValueError):
            model.fit([[["f"]]], [])


class TestGradient:
    def test_numeric_gradient_check(self):
        """Finite-difference validation of the forward–backward gradient."""
        sequences, labels = _toy_data()
        model = LinearChainCRF(["A", "B"], l2=0.0)
        encoded = [model._encode(sequence, grow=True) for sequence in sequences]
        targets = [np.array([model.label_index[l] for l in gold]) for gold in labels]
        n_features = len(model.feature_index)
        n_labels = 2

        rng = np.random.default_rng(0)
        emission = rng.normal(0, 0.3, (n_features, n_labels))
        transition = rng.normal(0, 0.3, (n_labels + 1, n_labels))

        def nll(em, tr):
            grad_em = np.zeros_like(em)
            grad_tr = np.zeros_like(tr)
            total = 0.0
            for tokens, gold in zip(encoded, targets):
                total += model._sequence_gradient(tokens, gold, em, tr, grad_em, grad_tr)
            return total, grad_em, grad_tr

        base, grad_em, grad_tr = nll(emission, transition)
        epsilon = 1e-5
        for index in [(0, 0), (1, 1), (0, 1)]:
            perturbed = emission.copy()
            perturbed[index] += epsilon
            numeric = (nll(perturbed, transition)[0] - base) / epsilon
            assert numeric == pytest.approx(grad_em[index], abs=1e-3)
        for index in [(0, 1), (2, 0)]:
            perturbed = transition.copy()
            perturbed[index] += epsilon
            numeric = (nll(emission, perturbed)[0] - base) / epsilon
            assert numeric == pytest.approx(grad_tr[index], abs=1e-3)


class TestPersistence:
    def test_save_and_load_round_trip(self, tmp_path):
        sequences, labels = _toy_data()
        model = LinearChainCRF(["A", "B"]).fit(sequences, labels)
        path = str(tmp_path / "model.npz")
        model.save(path)
        restored = LinearChainCRF.load(path)
        probe = [["fa"], ["fb"]]
        assert restored.predict(probe) == model.predict(probe)

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            LinearChainCRF(["A"]).save(str(tmp_path / "x.npz"))


class TestOnCorpus:
    def test_heldout_f1_matches_paper_ballpark(self):
        """Paper: F1 81% on cross-validation.  Held-out split here."""
        corpus = build_corpus(min_size=200)
        split = int(len(corpus) * 0.8)
        train, test = corpus[:split], corpus[split:]
        model = LinearChainCRF(
            sorted({label for _, labels in corpus for label in labels}),
            l2=0.05,
            max_iterations=40,
        )
        model.fit(
            [extract_features(tokens) for tokens, _ in train],
            [labels for _, labels in train],
        )
        metrics = model.evaluate(
            [extract_features(tokens) for tokens, _ in test],
            [labels for _, labels in test],
        )
        assert metrics["f1"] >= 0.8
        assert metrics["recall"] >= 0.8


class TestShippedWeights:
    def test_packaged_model_loads(self):
        from repro.nlp.tagger import default_crf

        model = default_crf()
        assert model.fitted
        corpus = build_corpus(min_size=60)
        metrics = model.evaluate(
            [extract_features(tokens) for tokens, _ in corpus[:40]],
            [labels for _, labels in corpus[:40]],
        )
        assert metrics["f1"] >= 0.85
