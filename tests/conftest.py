"""Shared fixtures and hypothesis configuration for the test suite."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.engine.trendline import Trendline, build_trendline

# Keep property tests fast and deterministic in CI.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def make_trendline(values, key="t", x=None) -> Trendline:
    """Helper: a trendline from raw values with integer x."""
    values = np.asarray(values, dtype=float)
    if x is None:
        x = np.arange(len(values), dtype=float)
    return build_trendline(key, x, values)


@pytest.fixture
def up_down_up() -> Trendline:
    """A clean rise–fall–rise shape, 60 points."""
    y = np.concatenate(
        [np.linspace(0, 10, 20), np.linspace(10, 2, 20), np.linspace(2, 12, 20)]
    )
    return make_trendline(y, key="udu")


@pytest.fixture
def noisy_up_down_up() -> Trendline:
    """The same shape with noise (seeded)."""
    rng = np.random.default_rng(7)
    y = np.concatenate(
        [np.linspace(0, 10, 20), np.linspace(10, 2, 20), np.linspace(2, 12, 20)]
    )
    return make_trendline(y + rng.normal(0, 0.4, 60), key="udu-noisy")


@pytest.fixture
def flat_line() -> Trendline:
    """A stable trendline with tiny noise."""
    rng = np.random.default_rng(3)
    return make_trendline(5.0 + rng.normal(0, 0.05, 50), key="flat")


@pytest.fixture
def rising_line() -> Trendline:
    """A monotone rise."""
    return make_trendline(np.linspace(0, 10, 50), key="rise")


@pytest.fixture
def rule_tagger():
    """The lexicon-only entity tagger (no CRF training cost)."""
    from repro.nlp.tagger import EntityTagger

    return EntityTagger(mode="rule")
