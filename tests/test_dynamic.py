"""Tests for the DP engine, including DP == exhaustive (Theorem 6.1/6.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import builder as q
from repro.engine.chains import compile_query
from repro.engine.dynamic import plan_layout, solve_chain, solve_query
from repro.engine.exhaustive import (
    enumerate_run_placements,
    exhaustive_solve_query,
)
from repro.engine.units import INFEASIBLE

from tests.conftest import make_trendline


def _random_trendline(seed, n=18):
    rng = np.random.default_rng(seed)
    return make_trendline(rng.normal(0, 1, n).cumsum(), key="rand{}".format(seed))


QUERIES = [
    q.concat(q.up(), q.down()),
    q.concat(q.up(), q.down(), q.up()),
    q.concat(q.flat(), q.up()),
    q.concat(q.slope(45), q.down()),
    q.up() >> (q.flat() | q.down()),
    q.concat(q.up(), q.or_(q.flat(), q.concat(q.down(), q.up()))),
]


class TestAgainstExhaustiveOracle:
    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_dp_equals_exhaustive(self, query_index, seed):
        """Theorem 6.1: the DP recurrence finds the optimal segmentation."""
        trendline = _random_trendline(seed)
        compiled = compile_query(QUERIES[query_index])
        dp = solve_query(trendline, compiled)
        oracle = exhaustive_solve_query(trendline, compiled)
        assert dp.score == pytest.approx(oracle.score, abs=1e-9)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15)
    def test_dp_equals_exhaustive_property(self, seed):
        trendline = _random_trendline(seed, n=14)
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        dp = solve_query(trendline, compiled)
        oracle = exhaustive_solve_query(trendline, compiled)
        assert dp.score == pytest.approx(oracle.score, abs=1e-9)

    def test_dp_with_pinned_segment_matches_oracle(self):
        trendline = _random_trendline(11, n=20)
        tree = q.concat(q.up(x_start=0, x_end=8), q.down(), q.up())
        compiled = compile_query(tree)
        dp = solve_query(trendline, compiled)
        oracle = exhaustive_solve_query(trendline, compiled)
        assert dp.score == pytest.approx(oracle.score, abs=1e-9)


class TestSolveChain:
    def test_finds_clean_breakpoints(self, up_down_up):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        solution = solve_chain(up_down_up, compiled.chains[0])
        bounds = solution.boundaries
        assert bounds[0] == 0 and bounds[-1] == up_down_up.n_bins
        assert bounds[1] == pytest.approx(20, abs=2)
        assert bounds[2] == pytest.approx(40, abs=2)

    def test_score_bounded(self, noisy_up_down_up):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        solution = solve_chain(noisy_up_down_up, compiled.chains[0])
        assert -1.0 <= solution.score <= 1.0

    def test_single_unit_covers_everything(self, rising_line):
        compiled = compile_query(q.up())
        solution = solve_chain(rising_line, compiled.chains[0])
        assert solution.boundaries == [0, rising_line.n_bins]

    def test_infeasible_when_too_short(self):
        trendline = make_trendline(np.arange(4.0))
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        solution = solve_chain(trendline, compiled.chains[0])
        assert solution.score == INFEASIBLE

    def test_placements_report_scores_and_slopes(self, up_down_up):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        solution = solve_chain(up_down_up, compiled.chains[0])
        assert len(solution.placements) == 3
        assert solution.placements[0].score > 0.5
        assert solution.placements[1].slope < 0

    def test_or_query_picks_best_chain(self, up_down_up):
        compiled = compile_query(q.up() >> (q.down() | (q.down() >> q.up())))
        result = solve_query(up_down_up, compiled)
        assert result.chain_index == 1  # the down⊗up branch matches the V tail


class TestPositionQueries:
    def test_position_two_pass(self):
        # Slow rise then much steeper rise: second slope > first.
        y = np.concatenate([np.linspace(0, 2, 30), np.linspace(2, 12, 30)])
        trendline = make_trendline(y, key="accel")
        tree = q.concat(q.up(), q.position(index=0, comparison=">"))
        compiled = compile_query(tree)
        result = solve_query(trendline, compiled)
        assert result.score > 0.3
        # The inverse comparison must score worse.
        inverse = compile_query(q.concat(q.up(), q.position(index=0, comparison="<")))
        assert solve_query(trendline, inverse).score < result.score

    def test_paper_luminosity_example(self):
        """[p=up][p=$0,m=<]: rises fast then slows (paper §3.1)."""
        y = np.concatenate([np.linspace(0, 10, 30), np.linspace(10, 11, 30)])
        trendline = make_trendline(y, key="slowing")
        compiled = compile_query(q.concat(q.up(), q.position(index=0, comparison="<")))
        assert solve_query(trendline, compiled).score > 0.4


class TestPlanLayout:
    def _chain(self, tree):
        return compile_query(tree).chains[0]

    def test_fully_fuzzy_single_run(self, up_down_up):
        chain = self._chain(q.concat(q.up(), q.down()))
        layout = plan_layout(up_down_up, chain, 0, up_down_up.n_bins)
        assert len(layout) == 1
        assert layout[0].kind == "fuzzy"
        assert layout[0].indices == [0, 1]

    def test_pinned_splits_runs(self, up_down_up):
        chain = self._chain(q.concat(q.up(), q.down(x_start=20, x_end=40), q.up()))
        layout = plan_layout(up_down_up, chain, 0, up_down_up.n_bins)
        kinds = [piece.kind for piece in layout]
        assert kinds == ["fuzzy", "pinned", "fuzzy"]
        assert layout[1].start == 20

    def test_start_only_pin_fixes_boundary(self, up_down_up):
        chain = self._chain(q.concat(q.up(), q.down(x_start=30)))
        layout = plan_layout(up_down_up, chain, 0, up_down_up.n_bins)
        assert layout[0].kind == "fuzzy" and layout[0].end == 30
        assert layout[1].start == 30


class TestEnumerateRunPlacements:
    def test_counts(self):
        # 3 units over 8 bins, min 2 each: compositions of 8 into 3 parts >= 2.
        placements = enumerate_run_placements(3, 0, 8)
        assert len(placements) == 6

    def test_all_valid(self):
        for placement in enumerate_run_placements(3, 0, 10):
            assert placement[0][0] == 0
            assert placement[-1][1] == 10
            for (a, b), (c, d) in zip(placement, placement[1:]):
                assert b == c
            assert all(b - a >= 2 for a, b in placement)

    def test_impossible_returns_empty(self):
        assert enumerate_run_placements(3, 0, 5) == []
