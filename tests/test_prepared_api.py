"""The prepared-query session API: PreparedSearch, ResultSet, front-end parity.

Covers the serving-era redesign: ``session.prepare`` binds parse +
compile + visual context once, ``run`` returns a list-compatible
:class:`ResultSet` carrying per-call stats and the rendered plan, the
sketch front-end routes through the same prepared path as text queries,
and ``from_arrays`` separates engine options from column arrays.
"""

import numpy as np
import pytest

from repro import PreparedSearch, ResultSet, ShapeSearch
from repro.data.table import Table
from repro.engine.chains import CompiledQuery
from repro.engine.executor import ExecutionStats, ShapeSearchEngine
from repro.render import render_matches, render_results


def _table(groups=6, length=30, seed=0):
    rng = np.random.default_rng(seed)
    zs, xs, ys = [], [], []
    for g in range(groups):
        values = rng.normal(0, 1, length).cumsum()
        for i, v in enumerate(values):
            zs.append("g{:02d}".format(g))
            xs.append(float(i))
            ys.append(float(v))
    return Table.from_arrays(
        z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys)
    )


def _sig(matches):
    return [(m.key, m.score) for m in matches]


class TestPreparedSearch:
    def test_prepare_binds_compiled_query_and_params(self):
        session = ShapeSearch(_table())
        prepared = session.prepare("[p=up][p=down]", z="z", x="x", y="y")
        assert isinstance(prepared, PreparedSearch)
        assert isinstance(prepared.compiled, CompiledQuery)
        assert (prepared.params.z, prepared.params.x, prepared.params.y) == (
            "z", "x", "y"
        )

    def test_run_matches_engine_run(self):
        session = ShapeSearch(_table())
        prepared = session.prepare("[p=up][p=down]", z="z", x="x", y="y")
        direct = session.engine.run(
            session.table, prepared.params, prepared.compiled, k=3
        )
        assert _sig(prepared.run(k=3)) == _sig(direct)

    def test_repeat_runs_reuse_the_bound_compile(self):
        session = ShapeSearch(_table(), cache=True)
        prepared = session.prepare("[p=up][p=down]", z="z", x="x", y="y")
        # The bound CompiledQuery short-circuits _compile entirely: no
        # plan-cache lookup happens (prepare did the single lookup).
        lookups_before = session.engine.cache.plans.stats.lookups
        first, second = prepared.run(k=3), prepared.run(k=3)
        assert session.engine.cache.plans.stats.lookups == lookups_before
        assert _sig(first) == _sig(second)

    def test_prepare_same_text_hits_plan_cache(self):
        session = ShapeSearch(_table(), cache=True)
        session.prepare("[p=up][p=down]", z="z", x="x", y="y")
        hits_before = session.engine.cache.plans.stats.hits
        session.prepare("[p=up][p=down]", z="z", x="x", y="y")
        assert session.engine.cache.plans.stats.hits == hits_before + 1

    def test_explain_matches_session_explain(self, rule_tagger):
        session = ShapeSearch(_table(), tagger=rule_tagger)
        prepared = session.prepare("rising then falling", z="z", x="x", y="y")
        assert prepared.explain() == session.explain("rising then falling")
        assert prepared.explain() == "[p=up][p=down]"

    def test_explain_plan_is_planning_only_and_matches_run(self):
        session = ShapeSearch(_table())
        prepared = session.prepare("[p=up]", z="z", x="x", y="y")
        text = prepared.explain_plan(k=2)
        assert "ScanTable" in text and "MergeTopK" in text
        assert prepared.run(k=2).plan == text

    def test_prepared_is_reusable_across_workers_override(self):
        with ShapeSearch(_table(groups=8), workers=2) as session:
            prepared = session.prepare("[p=up][p=down]", z="z", x="x", y="y")
            assert _sig(prepared.run(k=4, workers=1)) == _sig(
                prepared.run(k=4, workers=3)
            )

    def test_filters_aggregate_bin_width_bound_at_prepare(self):
        session = ShapeSearch(_table())
        prepared = session.prepare(
            "[p=up]", z="z", x="x", y="y", filters=("z != g00",), bin_width=5.0
        )
        results = prepared.run(k=10)
        assert all(m.key != "g00" for m in results)
        assert prepared.params.bin_width == 5.0


class TestResultSet:
    def _results(self, k=4):
        session = ShapeSearch(_table())
        return session.prepare("[p=up][p=down]", z="z", x="x", y="y").run(k=k)

    def test_sequence_protocol(self):
        results = self._results()
        assert len(results) > 0
        assert results[0] is list(results)[0]
        assert results[0] in results
        assert isinstance(results[:2], ResultSet)
        assert len(results[:2]) == 2
        assert results[-1] is list(results)[-1]

    def test_equality_with_plain_lists(self):
        results = self._results()
        assert results == list(results)
        assert list(results) == list(iter(results))
        assert results == results[:]
        assert not (results == list(results)[:-1])
        assert results != list(results)[:-1]

    def test_top_carries_stats_and_plan(self):
        results = self._results(k=4)
        top = results.top(2)
        assert isinstance(top, ResultSet)
        assert len(top) == 2
        assert top.stats is results.stats
        assert top.plan == results.plan
        assert _sig(top) == _sig(list(results)[:2])

    def test_stats_are_per_call_and_attached(self):
        session = ShapeSearch(_table())
        prepared = session.prepare("[p=up]", z="z", x="x", y="y")
        first, second = prepared.run(k=2), prepared.run(k=2)
        assert isinstance(first.stats, ExecutionStats)
        assert first.stats is not second.stats
        assert first.stats.candidates == 6

    def test_run_does_not_touch_last_stats(self):
        engine = ShapeSearchEngine()
        sentinel = engine.last_stats
        ShapeSearch(_table(), engine=engine).prepare(
            "[p=up]", z="z", x="x", y="y"
        ).run(k=2)
        assert engine.last_stats is sentinel

    def test_to_records(self):
        results = self._results(k=2)
        records = results.to_records()
        assert len(records) == 2
        assert set(records[0]) == {"key", "score", "placements"}
        assert records[0]["key"] == results[0].key
        assert records[0]["score"] == results[0].score
        seg_index, start, end, score, slope = records[0]["placements"][0]
        assert end > start

    def test_render_matches_accepts_result_set(self):
        results = self._results(k=2)
        assert results.render() == render_matches(list(results))
        footer = render_results(results)
        assert footer.startswith(results.render())
        assert "scored {} of {}".format(
            results.stats.scored, results.stats.candidates
        ) in footer
        # Plain lists render without the stats footer.
        assert render_results(list(results)) == render_matches(list(results))

    def test_plan_is_rendered_text_not_live_operators(self):
        # The plan rides along as text: holding the operator chain would
        # pin the scanned table / candidate collection for the
        # ResultSet's lifetime.
        results = self._results()
        assert isinstance(results._plan, str)
        assert isinstance(results.plan, str) and "Score" in results.plan

    def test_repr_is_compact(self):
        results = self._results(k=4)
        assert repr(results).startswith("ResultSet([")
        assert "n=4" in repr(results)


class TestRunManyFailFast:
    def test_invalid_query_rejects_batch_before_any_scoring(self, monkeypatch):
        import repro.engine.executor as executor_module
        from repro.errors import ExecutionError
        from repro.parser import parse

        calls = []
        real = executor_module.generate_trendlines

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(executor_module, "generate_trendlines", counting)
        session = ShapeSearch(_table())
        with pytest.raises(ExecutionError):
            session.engine.run_many(
                session.table,
                session.prepare("[p=up]", z="z", x="x", y="y").params,
                [parse("[p=up]"), "not-an-ast"],
                k=2,
            )
        # The whole batch was rejected at compile time: the valid first
        # query never generated or scored anything.
        assert calls == []


class TestFromArrays:
    def _arrays(self):
        return dict(
            z=np.array(["a"] * 10 + ["b"] * 10, dtype=object),
            x=np.array([float(i % 10) for i in range(20)]),
            y=np.arange(20, dtype=float),
        )

    def test_engine_options_are_not_swallowed_as_columns(self):
        session = ShapeSearch.from_arrays(
            backend="process", workers=2, cache=True, kernel="loop", **self._arrays()
        )
        try:
            assert list(session.table.column_names) == ["z", "x", "y"]
            assert session.engine.backend == "process"
            assert session.engine.workers == 2
            assert session.engine.cache is not None
            assert session.engine.kernel == "loop"
        finally:
            session.close()

    def test_explicit_engine_option(self):
        engine = ShapeSearchEngine(algorithm="dp")
        session = ShapeSearch.from_arrays(engine=engine, **self._arrays())
        assert session.engine is engine

    def test_array_valued_option_kwarg_rejected_loudly(self):
        from repro.errors import DataError

        arrays = self._arrays()
        with pytest.raises(DataError, match="columns= mapping"):
            ShapeSearch.from_arrays(
                z=arrays["z"], x=arrays["x"], cache=arrays["y"]
            )

    def test_colliding_column_names_via_columns_mapping(self):
        arrays = self._arrays()
        session = ShapeSearch.from_arrays(
            columns={"workers": arrays["y"]}, workers=2, z=arrays["z"], x=arrays["x"]
        )
        try:
            assert set(session.table.column_names) == {"z", "x", "workers"}
            assert session.engine.workers == 2
        finally:
            session.close()

    def test_plain_columns_still_work(self):
        session = ShapeSearch.from_arrays(**self._arrays())
        results = session.prepare("[p=up]", z="z", x="x", y="y").run(k=1)
        assert results[0].key == "a"


class TestSketchParity:
    """search_sketch routes through PreparedSearch like the other front-ends."""

    def _dup_x_table(self):
        # Duplicate x values per group make the aggregate observable.
        zs, xs, ys = [], [], []
        for key, offset in (("low", 0.0), ("high", 5.0)):
            for i in range(20):
                for dup, bump in ((0, 0.0), (1, 10.0)):
                    zs.append(key)
                    xs.append(float(i))
                    ys.append(offset + i + bump * dup)
        return Table.from_arrays(
            z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys)
        )

    def _pixels(self):
        return [(float(i), float(i)) for i in range(30)]

    def test_returns_result_set_equal_to_prepared_run(self):
        from repro.sketch.parser import parse_sketch

        session = ShapeSearch(_table())
        results = session.search_sketch(self._pixels(), z="z", x="x", y="y", k=3)
        assert isinstance(results, ResultSet)
        node = parse_sketch(self._pixels())
        prepared = session.prepare(node, z="z", x="x", y="y")
        assert _sig(results) == _sig(prepared.run(k=3))
        assert results.plan == prepared.explain_plan(k=3)

    def test_aggregate_is_honored(self):
        session = ShapeSearch(self._dup_x_table())
        mean = session.search_sketch(
            self._pixels(), z="z", x="x", y="y", k=2, aggregate="mean"
        )
        minimum = session.search_sketch(
            self._pixels(), z="z", x="x", y="y", k=2, aggregate="min"
        )
        # Different duplicate-x aggregation produces different trendlines.
        assert mean[0].trendline.bin_y[0] != minimum[0].trendline.bin_y[0]

    def test_bin_width_is_honored(self):
        session = ShapeSearch(_table())
        coarse = session.search_sketch(
            self._pixels(), z="z", x="x", y="y", k=1, bin_width=10.0
        )
        fine = session.search_sketch(self._pixels(), z="z", x="x", y="y", k=1)
        assert coarse[0].trendline.n_bins < fine[0].trendline.n_bins

    def test_workers_override_matches_sequential(self):
        with ShapeSearch(_table(groups=8), workers=2) as session:
            parallel = session.search_sketch(
                self._pixels(), z="z", x="x", y="y", k=4, workers=3
            )
            sequential = session.search_sketch(
                self._pixels(), z="z", x="x", y="y", k=4, workers=1
            )
            assert _sig(parallel) == _sig(sequential)
