"""Integration tests reproducing the paper's qualitative scenarios.

Each test mirrors a use-case from §1/§8: genomics treatment responses,
stem-cell plateaus, the pvt1 double-peak outlier, stock chart patterns,
southern-hemisphere weather, and astronomy transients.
"""

import pytest

from repro import ShapeSearch
from repro.datasets.domains import (
    astronomy_dataset,
    gene_expression_dataset,
    stock_dataset,
    weather_dataset,
)
from repro.nlp.tagger import EntityTagger


@pytest.fixture(scope="module")
def tagger():
    return EntityTagger(mode="rule")


class TestGenomicsCaseStudy:
    @pytest.fixture(scope="class")
    def session(self):
        table, planted = gene_expression_dataset(n_genes=40, length=48, seed=101)
        return ShapeSearch(table), planted

    def test_treatment_response_query(self, session, tagger):
        """§8-II: suddenly expressed, then gradually stop expressing."""
        shapesearch, planted = session
        matches = shapesearch.prepare(
            "[p=flat][p=up,m=>>][p=down,m=<]",
            z="gene", x="time", y="expression",
        ).run(k=5)
        keys = {match.key for match in matches}
        assert keys & set(planted["treatment"])

    def test_stem_cell_plateau_query(self, session):
        """§8-III: rise at ~45° then remain high and flat (gbx2/klf5/spry4)."""
        shapesearch, planted = session
        matches = shapesearch.prepare(
            "[p=up][p=flat]", z="gene", x="time", y="expression"
        ).run(k=5)
        keys = [match.key for match in matches]
        assert set(keys) & set(planted["stem-up"])

    def test_double_peak_outlier(self, session):
        """§8-IV: the pvt1 gene with two peaks in a short window."""
        shapesearch, planted = session
        matches = shapesearch.prepare(
            "[p=up,m=2]", z="gene", x="time", y="expression"
        ).run(k=3)
        assert "pvt1" in {match.key for match in matches}

    def test_inverse_behaviour_query(self, session):
        """§8-III inverse: start high, decline, remain low."""
        shapesearch, planted = session
        matches = shapesearch.prepare(
            "[p=down][p=flat]", z="gene", x="time", y="expression"
        ).run(k=5)
        assert {match.key for match in matches} & set(planted["stem-down"])


class TestStockPatterns:
    @pytest.fixture(scope="class")
    def session(self):
        table, planted = stock_dataset(n_stocks=30, length=120, seed=202)
        return ShapeSearch(table), planted

    def test_double_top(self, session):
        shapesearch, planted = session
        matches = shapesearch.prepare(
            "[p=up][p=down][p=up][p=down]", z="symbol", x="day", y="price"
        ).run(k=4)
        assert {m.key for m in matches} & set(planted["double-top"] + planted["w-shape"])

    def test_w_shape(self, session):
        shapesearch, planted = session
        matches = shapesearch.prepare(
            "[p=down][p=up][p=down][p=up]", z="symbol", x="day", y="price"
        ).run(k=4)
        assert {m.key for m in matches} & set(planted["w-shape"])

    def test_cup_pattern_via_nl(self, session, tagger):
        shapesearch, planted = session
        shapesearch.tagger = tagger
        matches = shapesearch.prepare(
            "falling then flat then rising", z="symbol", x="day", y="price"
        ).run(k=4)
        assert {m.key for m in matches} & set(planted["cup"])


class TestWeather:
    def test_southern_cities_found_by_pinned_query(self):
        table, planted = weather_dataset(n_cities=16, length=365, seed=303)
        session = ShapeSearch(table)
        # Rising toward year end is the southern-hemisphere signature:
        # temperatures climb from early-November (day ~305) to year end.
        matches = session.prepare(
            "[p=up,x.s=305,x.e=360]", z="city", x="day", y="temperature"
        ).run(k=4)
        keys = {match.key for match in matches}
        assert keys & set(planted["southern"])
        assert not keys & set(planted["northern"][:2]) or len(keys) > 2


class TestAstronomy:
    def test_supernova_sharp_peak(self):
        table, planted = astronomy_dataset(n_stars=40, length=200, seed=404)
        session = ShapeSearch(table)
        matches = session.prepare(
            "[p=flat][p=up,m=>>][p=down,m=<<][p=flat]",
            z="object", x="time", y="luminosity",
        ).run(k=3)
        assert "sn2026a" in {match.key for match in matches}

    def test_transit_dips_with_filters(self):
        table, planted = astronomy_dataset(n_stars=40, length=200, seed=404)
        session = ShapeSearch(table)
        matches = session.prepare(
            "[p=flat][p=down][p=up][p=flat]",
            z="object", x="time", y="luminosity",
            filters=("luminosity < 150",),
        ).run(k=6)
        assert {match.key for match in matches} & set(planted["transit"])


class TestUserDefinedPatterns:
    def test_udp_in_end_to_end_search(self):
        from repro import temporary_udp

        table, planted = gene_expression_dataset(n_genes=20, length=48, seed=101)
        session = ShapeSearch(table)

        def spiky(values, slope):
            spread = float(values.max() - values.min())
            return min(1.0, spread / 3.0) * 2 - 1

        with temporary_udp("spiky", spiky):
            matches = session.prepare(
                "[p=udp:spiky]", z="gene", x="time", y="expression"
            ).run(k=3)
            assert len(matches) == 3
