"""Tests for the top-k execution driver (Problem 1)."""

import numpy as np
import pytest

from repro.algebra import builder as q
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.chains import compile_query
from repro.engine.executor import ALGORITHMS, ShapeSearchEngine
from repro.errors import ExecutionError

from tests.conftest import make_trendline


def _collection():
    rng = np.random.default_rng(1)
    lines = []
    shapes = {
        "udu0": np.concatenate([np.linspace(0, 8, 20), np.linspace(8, 1, 20), np.linspace(1, 9, 20)]),
        "udu1": np.concatenate([np.linspace(2, 9, 20), np.linspace(9, 0, 20), np.linspace(0, 7, 20)]),
        "rise": np.linspace(0, 10, 60),
        "fall": np.linspace(10, 0, 60),
        "flat": np.full(60, 4.0) + rng.normal(0, 0.05, 60),
    }
    for key, values in shapes.items():
        lines.append(make_trendline(values + rng.normal(0, 0.1, 60), key=key))
    return lines


QUERY = q.concat(q.up(), q.down(), q.up())


class TestRank:
    @pytest.mark.parametrize("algorithm", ["dp", "segment-tree", "greedy"])
    def test_planted_shapes_rank_first(self, algorithm):
        engine = ShapeSearchEngine(algorithm=algorithm)
        matches = engine.rank(_collection(), QUERY, k=2)
        assert {match.key for match in matches} == {"udu0", "udu1"}

    def test_k_limits_results(self):
        engine = ShapeSearchEngine()
        assert len(engine.rank(_collection(), QUERY, k=3)) == 3

    def test_scores_sorted_descending(self):
        engine = ShapeSearchEngine()
        matches = engine.rank(_collection(), QUERY, k=5)
        scores = [match.score for match in matches]
        assert scores == sorted(scores, reverse=True)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ExecutionError):
            ShapeSearchEngine(algorithm="quantum")

    def test_compiled_query_accepted(self):
        engine = ShapeSearchEngine()
        matches = engine.rank(_collection(), compile_query(QUERY), k=1)
        assert matches[0].key in ("udu0", "udu1")

    def test_bad_query_type_rejected(self):
        engine = ShapeSearchEngine()
        with pytest.raises(ExecutionError):
            engine.rank(_collection(), "not-an-ast", k=1)

    def test_stats_populated(self):
        engine = ShapeSearchEngine()
        engine.rank(_collection(), QUERY, k=2)
        assert engine.last_stats.candidates == 5
        assert engine.last_stats.scored == 5

    def test_pruning_path(self):
        engine = ShapeSearchEngine(enable_pruning=True, sample_size=3, sample_points=32)
        matches = engine.rank(_collection(), QUERY, k=2)
        assert {match.key for match in matches} == {"udu0", "udu1"}
        assert engine.last_stats.pruning is not None

    def test_exhaustive_algorithm_small_input(self):
        rng = np.random.default_rng(5)
        small = [make_trendline(rng.normal(0, 1, 12).cumsum(), key=i) for i in range(3)]
        exhaustive = ShapeSearchEngine(algorithm="exhaustive").rank(small, QUERY, k=3)
        dp = ShapeSearchEngine(algorithm="dp").rank(small, QUERY, k=3)
        assert [m.key for m in exhaustive] == [m.key for m in dp]
        for a, b in zip(exhaustive, dp):
            assert a.score == pytest.approx(b.score, abs=1e-9)


class TestExecute:
    def _table(self):
        zs, xs, ys = [], [], []
        rng = np.random.default_rng(2)
        shapes = {
            "a": np.concatenate([np.linspace(0, 5, 15), np.linspace(5, 0, 15)]),
            "b": np.linspace(8, 0, 30),  # falling: eager-discarded by pinned 'up'
            "c": rng.normal(0, 1, 30).cumsum(),
        }
        for key, values in shapes.items():
            for index, value in enumerate(values):
                zs.append(key)
                xs.append(float(index))
                ys.append(float(value))
        return Table.from_arrays(z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys))

    def test_end_to_end(self):
        engine = ShapeSearchEngine()
        params = VisualParams(z="z", x="x", y="y")
        matches = engine.run(self._table(), params, q.concat(q.up(), q.down()), k=1)
        assert matches[0].key == "a"

    def test_y_constrained_query_skips_normalization(self):
        engine = ShapeSearchEngine()
        params = VisualParams(z="z", x="x", y="y")
        tree = q.segment(pattern=None, y_start=0.0, y_end=5.0)
        matches = engine.run(self._table(), params, tree, k=3)
        assert matches  # executes without error, raw-y space
        assert matches[0].trendline.y_std == 1.0

    def test_eager_discard_stats(self):
        # Floor-aware eager discard: with k=1 the heap fills after the
        # first candidate and the contradicted falling trendline "b"
        # (pinned 'up' scores negative) can be skipped without solving.
        engine = ShapeSearchEngine()
        params = VisualParams(z="z", x="x", y="y")
        tree = q.concat(q.up(x_start=0, x_end=14), q.down())
        result = engine.run(self._table(), params, tree, k=1)
        assert result.stats.eager_discarded >= 1
        assert (
            result.stats.scored + result.stats.eager_discarded
            == result.stats.candidates
        )

    def test_pushdown_toggle(self):
        plain = ShapeSearchEngine(enable_pushdown=False)
        params = VisualParams(z="z", x="x", y="y")
        tree = q.concat(q.up(x_start=0, x_end=14), q.down())
        matches = plain.run(self._table(), params, tree, k=3)
        assert matches.stats.eager_discarded == 0
        assert matches


class TestAlgorithmsConstant:
    def test_algorithm_list(self):
        assert set(ALGORITHMS) == {"dp", "segment-tree", "greedy", "exhaustive"}


class TestStatsIsolation:
    """Stats are per-call: concurrent ranks can't see each other's counters."""

    def test_rank_with_stats_returns_private_stats(self):
        engine = ShapeSearchEngine()
        collection = _collection()
        _, stats_a = engine.rank_with_stats(collection, QUERY, k=2)
        _, stats_b = engine.rank_with_stats(collection[:3], QUERY, k=2)
        assert stats_a.candidates == 5 and stats_a.scored == 5
        assert stats_b.candidates == 3 and stats_b.scored == 3
        # The first call's stats object was not mutated by the second.
        assert stats_a is not stats_b
        assert stats_a.scored == 5

    def test_concurrent_ranks_do_not_share_counters(self):
        from concurrent.futures import ThreadPoolExecutor

        engine = ShapeSearchEngine()
        small = _collection()[:2]
        large = _collection()

        def run(trendlines):
            _, stats = engine.rank_with_stats(trendlines, QUERY, k=2)
            return len(trendlines), stats

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(run, small if index % 2 == 0 else large)
                for index in range(12)
            ]
            for future in futures:
                expected, stats = future.result()
                assert stats.candidates == expected
                assert stats.scored == expected

    def test_last_stats_is_completed_snapshot(self):
        engine = ShapeSearchEngine()
        engine.rank(_collection(), QUERY, k=2)
        snapshot = engine.last_stats
        assert snapshot.candidates == 5 and snapshot.scored == 5
        engine.rank(_collection()[:3], QUERY, k=2)
        # The old snapshot object is immutable history, not a live view.
        assert snapshot.scored == 5
        assert engine.last_stats.scored == 3
