"""End-to-end tests for the streaming tail (session.tail / TailSearch).

The contract under test is ISSUE PR 6's tentpole acceptance criterion:
after any sequence of appends, ``tail.results`` is byte-identical —
keys, scores, placements, tie-breaks — to a cold ``prepared.run()`` over
the final table, on every backend and kernel.
"""

import math

import numpy as np
import pytest

from repro.api import ShapeSearch, TailSearch
from repro.data.table import Table
from repro.engine.control import ExecutionControl
from repro.engine.executor import ShapeSearchEngine
from repro.errors import ExecutionError, SearchCancelled

QUERY = "up then down then up"


def _records(groups, rows, offset=0, seed=0):
    rng = np.random.default_rng(seed + 17 * offset)
    out = []
    for g in groups:
        phase = (hash(g) % 7) * 0.9
        for i in range(rows):
            out.append({
                "z": g,
                "x": float(offset + i),
                "y": float(np.sin((offset + i) / 4.0 + phase)
                          + rng.normal(0, 0.05)),
            })
    return out


def _signature(results):
    return [
        (
            m.key,
            m.score,
            tuple(
                (p.seg_index, p.start, p.end, p.score, p.slope)
                for p in m.placements
            ),
        )
        for m in results
    ]


GROUPS = ["g{}".format(i) for i in range(8)]


def _run_tail_scenario(session):
    tail = session.tail(QUERY, z="z", x="x", y="y", k=5)
    assert tail.revision == 0
    tail.append_rows(_records(["g1", "g4"], 6, offset=24))
    tail.append_rows(_records(["fresh"], 18, offset=0))
    live = tail.append_rows(_records(GROUPS + ["fresh"], 4, offset=40))
    assert tail.revision == 3
    cold = tail.run(k=5)
    assert _signature(live) == _signature(cold)
    return tail, live


class TestByteIdentity:
    """Delta-vs-cold equality across backend x kernel x workers."""

    @pytest.mark.parametrize("backend,workers,shm", [
        ("thread", 1, True),
        ("thread", 3, True),
        ("process", 3, True),
        ("process", 3, False),
    ])
    @pytest.mark.parametrize("algorithm,kernel", [
        ("segment-tree", "matrix"),
        ("dp", "matrix"),
        ("dp", "loop"),
    ])
    def test_tail_matches_cold_run(self, backend, workers, shm, algorithm, kernel):
        engine = ShapeSearchEngine(
            algorithm=algorithm, kernel=kernel, backend=backend,
            workers=workers, shm=shm,
        )
        with ShapeSearch(Table.from_records(_records(GROUPS, 24)),
                         engine=engine) as session:
            tail, live = _run_tail_scenario(session)
            assert live.stats.generation == "tail"
            assert live.revision == 3

    def test_worker_generation_engine_config(self):
        engine = ShapeSearchEngine(backend="thread", workers=3,
                                   generation="worker")
        with ShapeSearch(Table.from_records(_records(GROUPS, 24)),
                         engine=engine) as session:
            _run_tail_scenario(session)

    def test_pruning_tiebreak_mirrors_cold_plan(self):
        engine = ShapeSearchEngine(enable_pruning=True, workers=1)
        with ShapeSearch(Table.from_records(_records(GROUPS, 24)),
                         engine=engine) as session:
            tail, live = _run_tail_scenario(session)
            assert tail._merge.tie == "key"

    def test_filters_limit_affected_groups(self):
        records = _records(GROUPS, 24)
        for index, record in enumerate(records):
            record["region"] = "north" if index % 2 else "south"
        with ShapeSearch.from_records(records) as session:
            tail = session.tail(
                QUERY, z="z", x="x", y="y", k=5,
                filters=['region == "north"'],
            )
            batch = _records(["g1", "g2"], 6, offset=24)
            for record in batch:
                record["region"] = "south"  # filtered out entirely
            live = tail.append_rows(batch)
            # Nothing survives the filter: no groups re-scored...
            assert live.stats.scored == 0
            # ...but the result still reflects (and equals) the new table.
            assert _signature(live) == _signature(tail.run(k=5))

    def test_nan_group_keys_round_trip(self):
        records = _records(GROUPS[:4], 24)
        records += [
            {"z": float("nan"), "x": float(i), "y": float(math.sin(i / 3.0))}
            for i in range(24)
        ]
        with ShapeSearch.from_records(records) as session:
            tail = session.tail(QUERY, z="z", x="x", y="y", k=10)
            live = tail.append_rows([
                {"z": float("nan"), "x": float(24 + i), "y": float(i)}
                for i in range(4)
            ])
            assert _signature(live) == _signature(tail.run(k=10))


class TestRefreshSemantics:
    def test_refresh_without_appends_returns_cached(self):
        with ShapeSearch.from_records(_records(GROUPS, 24)) as session:
            tail = session.tail(QUERY, z="z", x="x", y="y", k=5)
            first = tail.results
            assert tail.refresh() is first
            assert tail.revision == 0

    def test_revision_and_stats_track_appends(self):
        with ShapeSearch.from_records(_records(GROUPS, 24)) as session:
            tail = session.tail(QUERY, z="z", x="x", y="y", k=5)
            assert tail.results.revision == 0
            assert tail.results.stats.appended_rows == 0
            live = tail.append_rows(_records(["g2"], 6, offset=24))
            assert live.revision == 1
            assert live.stats.appended_rows == 6
            assert live.stats.scored == 1  # only g2 re-scored
            assert live.stats.generation == "tail"

    def test_results_is_resultset_with_plan(self):
        with ShapeSearch.from_records(_records(GROUPS, 24)) as session:
            tail = session.tail(QUERY, z="z", x="x", y="y", k=3)
            live = tail.append_rows(_records(["g0"], 4, offset=24))
            assert len(live) <= 3
            assert "IncrementalMerge" in live.plan
            assert "ScanDelta" in live.plan

    def test_missing_column_raises(self):
        with ShapeSearch.from_records(_records(GROUPS, 24)) as session:
            with pytest.raises(Exception):
                session.tail(QUERY, z="nope", x="x", y="y")

    def test_run_and_submit_still_work_on_tail(self):
        """TailSearch is a PreparedSearch: the one-shot surface remains."""
        with ShapeSearch.from_records(_records(GROUPS, 24)) as session:
            tail = session.tail(QUERY, z="z", x="x", y="y", k=5)
            future = tail.submit(k=5)
            assert _signature(future.result(timeout=60)) == _signature(tail.run(k=5))


class TestCancellation:
    def test_precancelled_control_raises_and_preserves_state(self):
        with ShapeSearch.from_records(_records(GROUPS, 24)) as session:
            tail = session.tail(QUERY, z="z", x="x", y="y", k=5)
            before = tail.results
            revision = tail.revision
            tail.table = tail.table.append_rows(_records(["g3"], 6, offset=24))
            control = ExecutionControl()
            control.cancel()
            with pytest.raises(SearchCancelled):
                tail.refresh(control)
            # Nothing applied: cached results, revision, watermark intact.
            assert tail.results is before
            assert tail.revision == revision
            # A clean retry consumes the same delta and matches cold.
            live = tail.refresh()
            assert live.revision == revision + 1
            assert _signature(live) == _signature(tail.run(k=5))

    def test_grouping_drift_raises_execution_error(self):
        with ShapeSearch.from_records(_records(GROUPS, 24)) as session:
            tail = session.tail(QUERY, z="z", x="x", y="y", k=5)
            tail.table = tail.table.append_rows(_records(["g0"], 4, offset=24))
            # Corrupt the session's group order to simulate drift.
            tail._order[tail._key_index["g0"]] = "imposter"
            with pytest.raises(ExecutionError, match="drift"):
                tail.refresh()


class TestControlDropNotify:
    """Satellite 3: drop() notifies, and terminal state is total-accounted."""

    def test_drop_notifies_progress_observer(self):
        events = []
        control = ExecutionControl(progress=lambda c, t: events.append((c, t)))
        control.begin(4)
        control.shard_completed()
        control.cancel()
        control.drop(3)
        assert events == [(0, 4), (1, 4), (1, 4)]
        completed, total, dropped = control.snapshot()
        assert completed + dropped == total  # the documented terminal contract

    def test_drop_zero_is_silent(self):
        events = []
        control = ExecutionControl(progress=lambda c, t: events.append((c, t)))
        control.begin(2)
        control.drop(0)
        assert events == [(0, 2)]

    def test_tail_progress_observer_sees_terminal_state(self):
        events = []
        with ShapeSearch.from_records(_records(GROUPS, 24)) as session:
            tail = session.tail(
                QUERY, z="z", x="x", y="y", k=5,
                progress=lambda c, t: events.append((c, t)),
            )
            tail.append_rows(_records(["g1"], 4, offset=24))
        assert events
        completed, total = events[-1]
        assert completed == total


class TestTailSearchExports:
    def test_tail_is_exported(self):
        import repro

        assert repro.TailSearch is TailSearch
        assert "TailSearch" in repro.__all__
