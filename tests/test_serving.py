"""The serving layer: protocol, codec, tenancy, registry, live server.

Layered like the package itself: pure-function tests for the wire
protocol and the WebSocket codec, deterministic unit tests for admission
control (injected clocks, fake futures) and the session registry, then
end-to-end tests against a real server on an ephemeral port — including
the acceptance contracts: served responses byte-identical to direct
session-API calls, warm result-cache hits that never touch the engine,
quota breaches answered with 429 (never a hang), and shed executions
cancelled through the ExecutionControl seam with ``reason="shed"``.
"""

import contextlib
import threading
import time

import numpy as np
import pytest

from repro import SessionRegistry, ShapeSearch, temporary_udp
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.errors import DataError, ExecutionError, SearchCancelled
from repro.serving import (
    AdmissionController,
    Overloaded,
    RequestError,
    ResultCache,
    ServingClient,
    ServingError,
    ShapeServingApp,
    TenantQuota,
    TokenBucket,
    json_dumps,
    result_payload,
    start_in_thread,
)
from repro.serving.protocol import (
    error_response,
    params_from_body,
    search_k,
    table_from_body,
)
from repro.serving.ws import (
    OP_BINARY,
    OP_CONT,
    OP_PING,
    OP_TEXT,
    FrameParser,
    ProtocolError,
    accept_key,
    encode_frame,
)


def _columns(groups=6, length=20, seed=3):
    rng = np.random.default_rng(seed)
    zs, xs, ys = [], [], []
    for g in range(groups):
        values = rng.normal(0, 1, length).cumsum()
        for i, v in enumerate(values):
            zs.append("g{:02d}".format(g))
            xs.append(float(i))
            ys.append(float(v))
    return {"z": zs, "x": xs, "y": ys}


def _reference_bytes(columns, query, k=10):
    """What a direct session-API call encodes to, byte for byte."""
    table = Table.from_arrays(**columns)
    with ShapeSearch(table) as session:
        results = session.prepare(query, z="z", x="x", y="y").run(k=k)
        return json_dumps(result_payload(results))


@contextlib.contextmanager
def _serving(app=None, tenant="default", **app_kwargs):
    app = app if app is not None else ShapeServingApp(**app_kwargs)
    handle = start_in_thread(app)
    client = ServingClient(*handle.address, tenant=tenant)
    try:
        yield handle, client
    finally:
        client.close()
        handle.stop()


class TestProtocol:
    def test_json_dumps_is_canonical(self):
        payload = json_dumps({"b": np.float64(1.5), "a": np.int64(2)})
        assert payload == b'{"a":2,"b":1.5}'
        assert json_dumps({"v": np.array([1.0, 2.0])}) == b'{"v":[1.0,2.0]}'
        with pytest.raises(TypeError):
            json_dumps({"x": object()})

    def test_error_mapping(self):
        status, body = error_response(Overloaded("rate_limited"))
        assert status == 429 and body["error"]["code"] == "rate_limited"
        status, body = error_response(RequestError(404, "unknown_table", "gone"))
        assert status == 404 and body["error"]["code"] == "unknown_table"
        status, body = error_response(SearchCancelled("stopped"))
        assert status == 409 and body["error"]["code"] == "cancelled"
        status, body = error_response(DataError("bad column"))
        assert status == 400 and body["error"]["code"] == "bad_request"

    def test_internal_errors_do_not_leak_messages(self):
        status, body = error_response(RuntimeError("secret stack detail"))
        assert status == 500
        assert body["error"]["code"] == "internal"
        assert "secret" not in body["error"]["message"]

    def test_search_k_validation(self):
        assert search_k({}) == 10
        assert search_k({"k": 3}) == 3
        for bad in (0, -1, True, "5", 2.5):
            with pytest.raises(DataError):
                search_k({"k": bad})

    def test_params_from_body(self):
        params = params_from_body(
            {"z": "z", "x": "x", "y": "y", "filters": "x > 1"}
        )
        assert isinstance(params, VisualParams)
        assert len(params.filters) == 1
        with pytest.raises(DataError):
            params_from_body({"z": "z", "x": "x"})  # y missing
        with pytest.raises(DataError):
            params_from_body({"z": "z", "x": "x", "y": "y", "filters": 7})

    def test_table_from_body(self):
        table = table_from_body({"columns": _columns(groups=2)})
        assert len(table) == 40
        table = table_from_body(
            {"records": [{"z": "a", "x": 0.0, "y": 1.0}]}
        )
        assert len(table) == 1
        for bad in ({}, {"columns": {}}, {"records": []}, {"columns": 3}):
            with pytest.raises(DataError):
                table_from_body(bad)


class TestWSCodec:
    def _roundtrip(self, payload, **kwargs):
        parser = FrameParser()
        frames = parser.feed(encode_frame(payload, **kwargs))
        assert len(frames) == 1
        return frames[0]

    def test_text_roundtrip_unmasked_and_masked(self):
        for mask in (None, b"\x01\x02\x03\x04"):
            opcode, payload = self._roundtrip(b'{"a":1}', mask=mask)
            assert opcode == OP_TEXT
            assert payload == b'{"a":1}'

    @pytest.mark.parametrize("size", [0, 125, 126, 200, 65535, 65536, 70000])
    def test_length_forms(self, size):
        blob = bytes(range(256)) * (size // 256 + 1)
        blob = blob[:size]
        opcode, payload = self._roundtrip(blob, opcode=OP_BINARY, mask=b"abcd")
        assert opcode == OP_BINARY
        assert payload == blob

    def test_byte_at_a_time_feeding(self):
        frame = encode_frame(b"streamed payload", mask=b"\xaa\xbb\xcc\xdd")
        parser = FrameParser()
        collected = []
        for index in range(len(frame)):
            collected.extend(parser.feed(frame[index:index + 1]))
        assert collected == [(OP_TEXT, b"streamed payload")]

    def test_fragmented_message_reassembles(self):
        first = encode_frame(b"hello ", opcode=OP_TEXT, fin=False)
        rest = encode_frame(b"world", opcode=OP_CONT, fin=True)
        parser = FrameParser()
        assert parser.feed(first) == []
        assert parser.feed(rest) == [(OP_TEXT, b"hello world")]

    def test_control_frames_interleave_with_fragments(self):
        parser = FrameParser()
        assert parser.feed(encode_frame(b"he", opcode=OP_TEXT, fin=False)) == []
        assert parser.feed(encode_frame(b"", opcode=OP_PING)) == [(OP_PING, b"")]
        assert parser.feed(encode_frame(b"llo", opcode=OP_CONT)) == [
            (OP_TEXT, b"hello")
        ]

    def test_fragmented_control_frame_is_a_protocol_error(self):
        parser = FrameParser()
        with pytest.raises(ProtocolError):
            parser.feed(encode_frame(b"x", opcode=OP_PING, fin=False))

    def test_unexpected_continuation_is_a_protocol_error(self):
        parser = FrameParser()
        with pytest.raises(ProtocolError):
            parser.feed(encode_frame(b"orphan", opcode=OP_CONT))

    def test_accept_key_rfc_vector(self):
        # The worked example from RFC 6455 section 1.3.
        assert (
            accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )


class _FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()  # burst exhausted
        clock.now += 0.5  # one token refilled at 2/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.now += 1000.0
        assert bucket.tokens == 3.0

    def test_zero_rate_never_refills(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        clock.now += 1e6
        assert not bucket.try_acquire()

    def test_none_rate_always_admits(self):
        bucket = TokenBucket(rate=None, burst=1.0)
        assert all(bucket.try_acquire() for _ in range(1000))
        assert bucket.tokens == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class _FakeFuture:
    """running()/done()/cancel(reason=) — the slice admission touches."""

    def __init__(self, running=False):
        self._running = running
        self._done = False
        self.cancel_reason = None

    def running(self):
        return self._running and not self._done

    def done(self):
        return self._done

    def cancel(self, reason=None):
        if self._done:
            return False
        self._done = True
        self.cancel_reason = reason
        return True


class TestAdmissionController:
    def _controller(self, **kwargs):
        kwargs.setdefault("quota", TenantQuota(rate=None, max_inflight=2))
        kwargs.setdefault("max_inflight", 3)
        kwargs.setdefault("clock", _FakeClock())
        return AdmissionController(**kwargs)

    def test_per_tenant_inflight_cap(self):
        control = self._controller()
        assert control.admit("a") is None
        assert control.admit("a") is None
        assert control.admit("a") == "overloaded"
        control.finish("a")
        assert control.admit("a") is None

    def test_global_cap_spans_tenants(self):
        control = self._controller()
        for tenant in ("a", "a", "b"):
            assert control.admit(tenant) is None
        assert control.admit("c") == "overloaded"
        control.finish("b")
        assert control.admit("c") is None

    def test_rate_limit_code(self):
        clock = _FakeClock()
        control = AdmissionController(
            quota=TenantQuota(rate=0.0, burst=1.0, max_inflight=8),
            clock=clock,
        )
        assert control.admit("a") is None
        assert control.admit("a") == "rate_limited"
        assert control.admit("b") is None  # buckets are per tenant
        assert control.snapshot()["rate_limited"] == 1

    def test_overload_sheds_queued_not_running(self):
        control = self._controller()
        running = _FakeFuture(running=True)
        queued = _FakeFuture(running=False)
        control.admit("a")
        control.attach("a", running)
        control.admit("a")
        control.attach("a", queued)
        control.admit("b")  # third slot: global cap now full
        assert control.admit("b") == "overloaded"
        assert queued.done() and queued.cancel_reason == "shed"
        assert not running.done()  # running work is never shed
        assert control.snapshot()["shed"] == 1

    def test_tenant_cap_refusal_sheds_only_that_tenant(self):
        # Tenant "a" exceeding its *own* cap must not cancel tenant
        # "b"'s admitted queued work: isolation means one tenant's
        # overload never becomes another's cancellation.
        control = self._controller(max_inflight=10)
        queued_a, queued_b = _FakeFuture(), _FakeFuture()
        control.admit("a")
        control.attach("a", queued_a)
        control.admit("a")  # tenant cap (2) now full
        control.admit("b")
        control.attach("b", queued_b)
        assert control.admit("a") == "overloaded"
        assert queued_a.done() and queued_a.cancel_reason == "shed"
        assert not queued_b.done()
        assert control.snapshot()["shed"] == 1

    def test_global_cap_refusal_sheds_across_tenants(self):
        control = self._controller()  # global cap 3
        queued = _FakeFuture()
        control.admit("a")
        control.attach("a", queued)
        control.admit("a")
        control.admit("b")  # global cap now full
        assert control.admit("c") == "overloaded"
        assert queued.done() and queued.cancel_reason == "shed"

    def test_overload_refusal_consumes_no_rate_token(self):
        # Caps are checked before the bucket: a sustained overload must
        # not drain the tenant's tokens, or it would be rate_limited the
        # moment capacity frees up.
        clock = _FakeClock()
        control = AdmissionController(
            quota=TenantQuota(rate=0.0, burst=2.0, max_inflight=1),
            clock=clock,
        )
        assert control.admit("a") is None  # first token
        for _ in range(5):
            assert control.admit("a") == "overloaded"
        control.finish("a")
        assert control.admit("a") is None  # second token survived the storm
        control.finish("a")
        assert control.admit("a") == "rate_limited"  # bucket genuinely empty
        assert control.snapshot()["overloaded"] == 5

    def test_sweep_cancels_everything(self):
        control = self._controller()
        futures = [_FakeFuture(running=True), _FakeFuture()]
        for future in futures:
            control.admit("a")
            control.attach("a", future)
        assert control.sweep("shutdown") == 2
        assert all(f.cancel_reason == "shutdown" for f in futures)

    def test_finish_removes_future_by_identity(self):
        control = self._controller()
        future = _FakeFuture()
        control.admit("a")
        control.attach("a", future)
        control.finish("a", future)
        assert control.sweep() == 0
        assert control.total_inflight == 0

    def test_set_quota_overrides_one_tenant(self):
        control = self._controller()
        control.set_quota("vip", TenantQuota(rate=None, max_inflight=3))
        assert control.quota_for("vip").max_inflight == 3
        assert control.quota_for("anyone").max_inflight == 2


class TestSessionRegistry:
    def _table(self, seed):
        return Table.from_arrays(**{
            name: np.asarray(values, dtype=object if name == "z" else None)
            for name, values in _columns(groups=2, seed=seed).items()
        })

    def test_publish_is_idempotent(self):
        with SessionRegistry(capacity=4) as registry:
            first = registry.publish(self._table(seed=1))
            second = registry.publish(self._table(seed=1))
            assert first == second
            assert len(registry) == 1
            assert registry.get(first) is registry.get(second)

    def test_lru_eviction_closes_and_notifies(self):
        evicted = []
        with SessionRegistry(capacity=2) as registry:
            registry.add_evict_hook(
                lambda fingerprint, session: evicted.append(fingerprint)
            )
            fps = [registry.publish(self._table(seed=s)) for s in (1, 2)]
            registry.get(fps[0])  # promote: fps[1] is now the LRU
            registry.publish(self._table(seed=3))
            assert evicted == [fps[1]]
            assert fps[0] in registry and fps[1] not in registry

    def test_get_unknown_fingerprint_raises(self):
        with SessionRegistry() as registry:
            with pytest.raises(DataError, match="publish the table first"):
                registry.get("no-such-fingerprint")
            with pytest.raises(DataError, match="publish the table first"):
                registry.checkout("no-such-fingerprint")

    def test_eviction_of_leased_session_defers_close(self):
        evicted = []
        with SessionRegistry(capacity=1) as registry:
            registry.add_evict_hook(lambda fp, session: evicted.append(fp))
            first = registry.publish(self._table(seed=1))
            session = registry.checkout(first)
            registry.publish(self._table(seed=2))  # evicts first, leased
            assert first not in registry
            assert evicted == []  # close deferred: the lease is live
            # The leased session still serves work mid-drain.
            results = session.prepare("[p=up]", z="z", x="x", y="y").run(k=2)
            assert len(results) >= 0
            registry.release(session)
            assert evicted == [first]

    def test_nested_leases_close_on_last_release(self):
        evicted = []
        with SessionRegistry(capacity=1) as registry:
            registry.add_evict_hook(lambda fp, session: evicted.append(fp))
            first = registry.publish(self._table(seed=1))
            session = registry.checkout(first)
            assert registry.checkout(first) is session
            registry.publish(self._table(seed=2))
            registry.release(session)
            assert evicted == []  # one lease still live
            registry.release(session)
            assert evicted == [first]
        registry.release(None)  # tolerated, for unconditional finallys

    def test_close_drains_leased_sessions(self):
        evicted = []
        registry = SessionRegistry(capacity=2)
        registry.add_evict_hook(lambda fp, session: evicted.append(fp))
        fingerprint = registry.publish(self._table(seed=1))
        session = registry.checkout(fingerprint)
        registry.close()
        assert evicted == []  # shutdown waits for the in-flight lease
        with pytest.raises(ExecutionError):
            registry.publish(self._table(seed=2))
        registry.release(session)
        assert evicted == [fingerprint]

    def test_close_evicts_all_and_blocks_publish(self):
        evicted = []
        registry = SessionRegistry(capacity=4)
        registry.add_evict_hook(lambda fp, session: evicted.append(fp))
        registry.publish(self._table(seed=1))
        registry.close()
        assert len(evicted) == 1 and len(registry) == 0
        with pytest.raises(ExecutionError):
            registry.publish(self._table(seed=2))

    def test_hook_errors_are_swallowed(self):
        with SessionRegistry(capacity=1) as registry:
            registry.add_evict_hook(lambda fp, session: 1 / 0)
            registry.publish(self._table(seed=1))
            registry.publish(self._table(seed=2))  # eviction must not raise
            assert len(registry) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SessionRegistry(capacity=0)


class TestResultCacheKeying:
    PARAMS = VisualParams(z="z", x="x", y="y")

    def test_every_component_is_load_bearing(self):
        base = ResultCache.key("fp", "[p=up]", self.PARAMS, 10, "float64")
        assert base == ResultCache.key("fp", "[p=up]", self.PARAMS, 10, "float64")
        variants = [
            ResultCache.key("other", "[p=up]", self.PARAMS, 10, "float64"),
            ResultCache.key("fp", "[p=down]", self.PARAMS, 10, "float64"),
            ResultCache.key(
                "fp", "[p=up]", VisualParams(z="z", x="x", y="y", aggregate="sum"),
                10, "float64",
            ),
            ResultCache.key("fp", "[p=up]", self.PARAMS, 5, "float64"),
            ResultCache.key("fp", "[p=up]", self.PARAMS, 10, "float32"),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_round_trip_and_snapshot(self):
        cache = ResultCache(capacity=2, max_bytes=1024)
        key = ResultCache.key("fp", "[p=up]", self.PARAMS, 10, "float64")
        assert cache.get(key) is None
        cache.put(key, b'{"matches":[]}')
        assert cache.get(key) == b'{"matches":[]}'
        snapshot = cache.snapshot()
        assert snapshot["entries"] == 1
        assert snapshot["bytes"] == len(b'{"matches":[]}')
        assert snapshot["hits"] == 1 and snapshot["misses"] == 1


class TestServerEndToEnd:
    QUERY = "[p=up][p=down]"

    def test_search_bytes_identical_to_session_api(self):
        columns = _columns()
        with _serving() as (handle, client):
            fingerprint = client.publish_columns(**columns)
            prepared = client.prepare(fingerprint, self.QUERY, "z", "x", "y", k=5)
            assert prepared["table"] == fingerprint
            assert "Score" in prepared["plan"] or prepared["plan"]
            response = client.search(fingerprint, self.QUERY, "z", "x", "y", k=5)
            assert response["cache"] is None
            served = json_dumps(response["result"])
            assert served == _reference_bytes(columns, self.QUERY, k=5)

    def test_warm_hit_skips_the_engine_entirely(self):
        with _serving() as (handle, client):
            fingerprint = client.publish_columns(**_columns())
            cold = client.search(fingerprint, self.QUERY, "z", "x", "y", k=5)
            admitted_after_cold = handle.app.admission.snapshot()["admitted"]
            warm = client.search(fingerprint, self.QUERY, "z", "x", "y", k=5)
            assert warm["cache"] == "result"
            assert json_dumps(warm["result"]) == json_dumps(cold["result"])
            snapshot = handle.app.admission.snapshot()
            # The warm hit consumed no admission slot: the engine (and
            # its Score stage) never saw the second request.
            assert snapshot["admitted"] == admitted_after_cold
            assert handle.app.result_cache.snapshot()["hits"] == 1

    def test_publish_is_idempotent_over_the_wire(self):
        columns = _columns()
        with _serving() as (handle, client):
            assert client.publish_columns(**columns) == client.publish_columns(
                **columns
            )
            assert len(handle.app.registry) == 1

    def test_unknown_table_is_404(self):
        with _serving() as (handle, client):
            with pytest.raises(ServingError) as excinfo:
                client.search("feedfacedeadbeef", self.QUERY, "z", "x", "y")
            assert excinfo.value.status == 404
            assert excinfo.value.code == "unknown_table"

    def test_bad_query_and_bad_request_are_400(self):
        with _serving() as (handle, client):
            fingerprint = client.publish_columns(**_columns(groups=2))
            with pytest.raises(ServingError) as excinfo:
                client.search(fingerprint, "[p=", "z", "x", "y")
            assert excinfo.value.status == 400
            assert excinfo.value.code == "bad_query"
            with pytest.raises(ServingError) as excinfo:
                client.search(fingerprint, self.QUERY, "z", "x", "nope")
            assert excinfo.value.status == 400
            with pytest.raises(ServingError) as excinfo:
                client.request("POST", "/v1/search", {"table": fingerprint})
            assert excinfo.value.status == 400

    def test_unrouted_path_is_404(self):
        with _serving() as (handle, client):
            with pytest.raises(ServingError) as excinfo:
                client.request("GET", "/v2/nope")
            assert excinfo.value.status == 404
            assert excinfo.value.code == "not_found"

    def test_rate_limit_is_429_rate_limited(self):
        # rate=0, burst=1: exactly one admission, ever — deterministic.
        app = ShapeServingApp(
            quota=TenantQuota(rate=0.0, burst=1.0, max_inflight=8)
        )
        with _serving(app) as (handle, client):
            fingerprint = client.publish_columns(**_columns(groups=2))
            client.search(fingerprint, "[p=up]", "z", "x", "y", k=2)
            with pytest.raises(ServingError) as excinfo:
                # A different query: the result cache must not mask the
                # refusal, and the bucket is already empty.
                client.search(fingerprint, "[p=down]", "z", "x", "y", k=2)
            assert excinfo.value.status == 429
            assert excinfo.value.code == "rate_limited"
            # Cached results stay served even while rate-limited: a hit
            # consumes no token.
            warm = client.search(fingerprint, "[p=up]", "z", "x", "y", k=2)
            assert warm["cache"] == "result"

    def test_overload_is_429_and_sheds_queued_ws_search(self):
        gate = threading.Event()

        def blocking(values, slope):
            assert gate.wait(timeout=60)
            return 0.5

        app = ShapeServingApp(
            quota=TenantQuota(rate=None, max_inflight=8), max_inflight=3
        )
        with _serving(app) as (handle, client):
            fingerprint = client.publish_columns(**_columns(groups=3))
            with temporary_udp("serve_gate", blocking):
                with client.open_stream() as stream:
                    # Two searches run on the engine's drivers; the third
                    # is admitted but still queued behind the dispatcher.
                    sids = [
                        stream.submit(
                            fingerprint, "[p=udp:serve_gate]", "z", "x", "y",
                            k=2, search_id="s{}".format(index),
                        )
                        for index in range(3)
                    ]
                    for sid in sids:
                        frame = stream.next_frame(sid)
                        assert frame["type"] == "accepted"
                    # Wait until both driver threads have actually picked
                    # up their executions: a future only reports
                    # running() once its driver starts it, and the shed
                    # sweep must see exactly one queued (not-running)
                    # future — racing ahead would shed all three.
                    deadline = time.monotonic() + 10.0
                    while handle.app.admission.snapshot()["running"] < 2:
                        assert time.monotonic() < deadline, "drivers never started"
                        time.sleep(0.005)
                    # Admission is full: the HTTP request is refused
                    # immediately (never hangs) and the queued WS search
                    # is shed with reason="shed".
                    with pytest.raises(ServingError) as excinfo:
                        client.search(fingerprint, "[p=up]", "z", "x", "y", k=2)
                    assert excinfo.value.status == 429
                    assert excinfo.value.code == "overloaded"
                    with pytest.raises(ServingError) as shed_info:
                        stream.result(sids[2])
                    assert shed_info.value.code == "overloaded"
                    assert handle.app.admission.snapshot()["shed"] == 1
                    gate.set()  # survivors complete with real results
                    for sid in sids[:2]:
                        terminal = stream.result(sid)
                        assert terminal["type"] == "result"
                        assert terminal["result"]["matches"]

    def test_ws_progress_cancel_and_byte_identity(self):
        columns = _columns()
        with _serving() as (handle, client):
            fingerprint = client.publish_columns(**columns)
            # One shard per group so progress frames are guaranteed.
            session = handle.app.registry.get(fingerprint)
            session.engine.chunk_size = 1

            gate = threading.Event()

            def blocking(values, slope):
                assert gate.wait(timeout=60)
                return 0.5

            with temporary_udp("serve_cancel", blocking):
                with client.open_stream() as stream:
                    sid = stream.submit(
                        fingerprint, "[p=udp:serve_cancel]", "z", "x", "y", k=2
                    )
                    assert stream.next_frame(sid)["type"] == "accepted"
                    stream.cancel(sid)
                    gate.set()  # unblock shards so the cancel lands
                    terminal = stream.result(sid)
                    assert terminal["type"] == "cancelled"
                    assert terminal["reason"] == "user"

            # The session remains healthy after the cancel, and the
            # streamed result is byte-identical to the HTTP (and thus
            # direct session-API) encoding of the same search.
            with client.open_stream() as stream:
                sid = stream.submit(fingerprint, self.QUERY, "z", "x", "y", k=5)
                frames = list(stream.frames(sid))
                assert frames[0]["type"] == "accepted"
                progress = [f for f in frames if f["type"] == "progress"]
                assert progress
                assert progress[-1]["completed"] == progress[-1]["total"]
                assert frames[-1]["type"] == "result"
                streamed = json_dumps(frames[-1]["result"])
            http_response = client.search(fingerprint, self.QUERY, "z", "x", "y", k=5)
            assert streamed == json_dumps(http_response["result"])
            assert streamed == _reference_bytes(columns, self.QUERY, k=5)

    def test_many_concurrent_ws_sessions(self):
        columns = _columns(groups=4)
        reference = _reference_bytes(columns, self.QUERY, k=3)
        sessions = 32
        with _serving(max_inflight=sessions + 4) as (handle, client):
            fingerprint = client.publish_columns(**columns)
            results = [None] * sessions
            errors = []

            def worker(index):
                try:
                    with client.open_stream() as stream:
                        sid = stream.submit(
                            fingerprint, self.QUERY, "z", "x", "y", k=3
                        )
                        terminal = stream.result(sid)
                        results[index] = json_dumps(terminal["result"])
                except Exception as exc:  # surfaced below, with context
                    errors.append((index, repr(exc)))

            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(sessions)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            assert all(payload == reference for payload in results)
            # The terminal frame is written before the handler's finally
            # records the request, so give the counters a moment.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                stats = handle.app.stats.snapshot()
                if stats["WS /v1/submit"]["count"] == sessions:
                    break
                time.sleep(0.01)
            assert stats["WS /v1/submit"]["count"] == sessions

    def test_ws_protocol_errors_get_error_frames(self):
        with _serving() as (handle, client):
            fingerprint = client.publish_columns(**_columns(groups=2))
            with client.open_stream() as stream:
                stream._send_json({"type": "warp", "id": 1})
                frame = stream.next_frame(1)
                assert frame["type"] == "error"
                assert frame["code"] == "bad_request"
                sid = stream.submit(fingerprint, "[p=", "z", "x", "y")
                with pytest.raises(ServingError) as excinfo:
                    stream.result(sid)
                assert excinfo.value.code == "bad_query"
                sid = stream.submit("not-published", "[p=up]", "z", "x", "y")
                with pytest.raises(ServingError) as excinfo:
                    stream.result(sid)
                assert excinfo.value.code == "unknown_table"

    def test_ws_duplicate_active_search_id_is_rejected(self):
        gate = threading.Event()

        def blocking(values, slope):
            assert gate.wait(timeout=60)
            return 0.5

        with _serving() as (handle, client):
            fingerprint = client.publish_columns(**_columns(groups=2))
            with temporary_udp("serve_dup", blocking):
                with client.open_stream() as stream:
                    sid = stream.submit(
                        fingerprint, "[p=udp:serve_dup]", "z", "x", "y",
                        k=2, search_id="dup",
                    )
                    assert stream.next_frame(sid)["type"] == "accepted"
                    # Reusing an id that is still active collides with
                    # the running search's registration: refused.
                    stream.submit(
                        fingerprint, "[p=udp:serve_dup]", "z", "x", "y",
                        k=2, search_id="dup",
                    )
                    while True:  # progress frames may interleave
                        frame = stream.next_frame(sid)
                        if frame["type"] != "progress":
                            break
                    assert frame["type"] == "error"
                    assert frame["code"] == "bad_request"
                    assert "already active" in frame["message"]
                    gate.set()
                    terminal = stream.result(sid)  # survivor unaffected
                    assert terminal["type"] == "result"
                    # After the terminal frame the id is free again.
                    stream.submit(
                        fingerprint, "[p=udp:serve_dup]", "z", "x", "y",
                        k=2, search_id="dup",
                    )
                    assert stream.result(sid)["type"] == "result"

    def test_unrouted_paths_share_one_stats_entry(self):
        # Unique 404 paths must not each grow a stats entry (unbounded
        # memory for an unauthenticated scanner): they pool under
        # "other" and routed endpoints keep their own labels.
        with _serving() as (handle, client):
            for index in range(8):
                with pytest.raises(ServingError):
                    client.request("GET", "/v2/scan-{}".format(index))
            endpoints = handle.app.stats.snapshot()
            assert "other" in endpoints
            assert endpoints["other"]["count"] == 8
            assert endpoints["other"]["errors"] == 8
            assert not any(name.startswith("/v2/") for name in endpoints)

    def test_stats_endpoint_shape(self):
        with _serving() as (handle, client):
            fingerprint = client.publish_columns(**_columns(groups=2))
            client.search(fingerprint, "[p=up]", "z", "x", "y", k=2)
            client.search(fingerprint, "[p=up]", "z", "x", "y", k=2)
            stats = client.stats()
            assert stats["protocol"] == 1
            search = stats["endpoints"]["/v1/search"]
            assert search["count"] == 2 and search["errors"] == 0
            assert search["p99_ms"] >= search["p50_ms"] >= 0.0
            assert stats["admission"]["admitted"] == 1  # one warm hit
            assert stats["result_cache"]["hits"] == 1
            assert stats["registry"]["sessions"] == 1
            assert fingerprint in stats["registry"]["fingerprints"]

    def test_eviction_prunes_artifact_store_to_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_BUDGET", "0")
        store = tmp_path / "artifacts"
        app = ShapeServingApp(
            registry_capacity=1,
            session_options={"index": True, "store": str(store)},
        )
        with _serving(app) as (handle, client):
            # 32+ groups: large enough for the engine's index path, so
            # the cold search persists an artifact worth pruning.
            first = client.publish_columns(**_columns(groups=32, length=24, seed=1))
            client.search(first, self.QUERY, "z", "x", "y", k=2)
            assert any(store.iterdir())  # the search persisted an index
            client.publish_columns(**_columns(groups=2, seed=2))  # evicts
            assert handle.app.last_prune is not None
            assert handle.app.last_prune["removed"] >= 1
            assert handle.app.last_prune["kept_bytes"] == 0
            assert not any(store.iterdir())
            assert client.stats()["artifact_prune"]["removed"] >= 1

    def test_tenants_are_isolated_by_header(self):
        app = ShapeServingApp(
            quota=TenantQuota(rate=0.0, burst=1.0, max_inflight=8)
        )
        with _serving(app, tenant="alpha") as (handle, client):
            fingerprint = client.publish_columns(**_columns(groups=2))
            client.search(fingerprint, "[p=up]", "z", "x", "y", k=2)
            with pytest.raises(ServingError):
                client.search(fingerprint, "[p=down]", "z", "x", "y", k=2)
            # A different tenant has its own untouched bucket.
            other = ServingClient(*handle.address, tenant="beta")
            try:
                response = other.search(fingerprint, "[p=down]", "z", "x", "y", k=2)
                assert response["result"]["matches"] is not None
            finally:
                other.close()
