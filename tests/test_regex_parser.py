"""Tests for the regex dialect lexer and CFG parser (paper Table 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra import builder as q
from repro.algebra.nodes import And, Concat, Opposite, Or, ShapeSegment
from repro.algebra.printer import to_regex
from repro.errors import ShapeQuerySyntaxError
from repro.parser import parse, tokenize


class TestLexer:
    def test_tokenizes_segment(self):
        kinds = [t.kind for t in tokenize("[p=up]")]
        assert kinds == ["LBRACKET", "IDENT", "EQ", "IDENT", "RBRACKET", "EOF"]

    def test_location_keys(self):
        kinds = [t.kind for t in tokenize("x.s=2,y.e=-3.5")]
        assert kinds == ["KEY", "EQ", "NUMBER", "COMMA", "KEY", "EQ", "NUMBER", "EOF"]

    def test_unicode_operators(self):
        kinds = [t.kind for t in tokenize("⊗⊙⊕¬")]
        assert kinds == ["ARROW", "AND", "OR", "BANG", "EOF"]

    def test_rejects_garbage(self):
        with pytest.raises(ShapeQuerySyntaxError) as excinfo:
            tokenize("[p=up] @")
        assert excinfo.value.position == 7

    def test_position_tokens(self):
        kinds = [t.kind for t in tokenize("$0 $- $+")]
        assert kinds == ["DOLLARNUM", "DOLLARPREV", "DOLLARNEXT", "EOF"]


class TestSegments:
    def test_simple_pattern(self):
        node = parse("[p=up]")
        assert isinstance(node, ShapeSegment)
        assert node.pattern.kind == "up"

    def test_all_pattern_words(self):
        for word, kind in [("up", "up"), ("down", "down"), ("flat", "flat"), ("empty", "empty")]:
            assert parse("[p={}]".format(word)).pattern.kind == kind
        assert parse("[p=*]").pattern.kind == "any"

    def test_slope_pattern(self):
        node = parse("[p=45]")
        assert node.pattern.kind == "slope"
        assert node.pattern.theta == 45
        assert parse("[p=-20]").pattern.theta == -20

    def test_location_entries(self):
        node = parse("[x.s=2,x.e=10,y.s=10,y.e=100]")
        loc = node.location
        assert (loc.x_start, loc.x_end, loc.y_start, loc.y_end) == (2, 10, 10, 100)

    def test_iterator(self):
        node = parse("[x.s=.,x.e=.+3,p=up]")
        assert node.location.iterator.width == 3

    def test_position_patterns(self):
        assert parse("[p=$0]").pattern.reference.index == 0
        assert parse("[p=$-]").pattern.reference.relative == -1
        assert parse("[p=$+]").pattern.reference.relative == 1

    def test_udp_pattern(self):
        node = parse("[p=udp:spike]")
        assert node.pattern.kind == "udp"
        assert node.pattern.udp_name == "spike"

    def test_sketch_vector(self):
        node = parse("[v=(2:10,3:14,10:100)]")
        assert node.sketch.points == ((2, 10), (3, 14), (10, 100))

    def test_nested_pattern(self):
        node = parse("[x.s=2,x.e=10,p=[p=up][p=down]]")
        assert node.pattern.kind == "nested"
        assert isinstance(node.pattern.nested, Concat)

    def test_modifiers(self):
        assert parse("[p=up,m=>>]").modifier.comparison == ">>"
        assert parse("[p=down,m=<<]").modifier.comparison == "<<"
        assert parse("[p=up,m=>2]").modifier.factor == 2
        assert parse("[p=up,m==]").modifier.comparison == "="
        assert parse("[p=up,m=2]").modifier.quantifier.low == 2
        assert parse("[p=up,m={2,5}]").modifier.quantifier.high == 5
        assert parse("[p=up,m={2,}]").modifier.quantifier.high is None
        assert parse("[p=up,m={,2}]").modifier.quantifier.low is None


class TestOperators:
    def test_adjacency_is_concat(self):
        node = parse("[p=up][p=down][p=up]")
        assert isinstance(node, Concat)
        assert len(node.children) == 3

    def test_explicit_concat_forms(self):
        assert parse("[p=up]->[p=down]") == parse("[p=up][p=down]")
        assert parse("[p=up]⊗[p=down]") == parse("[p=up][p=down]")

    def test_or_and_aliases(self):
        assert isinstance(parse("[p=up]|[p=down]"), Or)
        assert isinstance(parse("[p=up]⊕[p=down]"), Or)
        assert isinstance(parse("[p=up]&[p=down]"), And)
        assert isinstance(parse("[p=up]⊙[p=down]"), And)

    def test_opposite(self):
        node = parse("![p=flat]")
        assert isinstance(node, Opposite)

    def test_precedence_or_lowest(self):
        node = parse("[p=up][p=down]|[p=flat]")
        assert isinstance(node, Or)
        assert isinstance(node.children[0], Concat)

    def test_grouping_parentheses(self):
        node = parse("[p=up]([p=flat]|([p=down][p=up]))")
        assert isinstance(node, Concat)
        assert isinstance(node.children[1], Or)

    def test_paper_example_query(self):
        text = "[p=up,x.s=50,x.e=100][p=down][p=up]"
        node = parse(text)
        segments = list(node.segments())
        assert segments[0].location.is_x_pinned
        assert segments[1].is_fuzzy


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "[p=up",
            "[p=]",
            "[p=up]]",
            "[q=up]",
            "[p=up,m=]",
            "[x.s=a]",
            "[p=up]|",
            "([p=up]",
            "[v=(1:2,]",
            "[m={5,2},p=up]",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ShapeQuerySyntaxError):
            parse(bad)

    def test_error_carries_position(self):
        with pytest.raises(ShapeQuerySyntaxError) as excinfo:
            parse("[p=up][p=wiggly]")
        assert excinfo.value.position is not None
        assert "wiggly" in str(excinfo.value)


def ast_strategy():
    """Random ASTs for round-trip testing."""
    leaves = st.one_of(
        st.sampled_from([q.up(), q.down(), q.flat(), q.any_pattern(), q.slope(45), q.slope(-20)]),
        st.just(q.up(x_start=2, x_end=8)),
        st.just(q.repeated(q.up(), low=2)),
        st.just(q.up(sharp=True)),
        st.just(q.flat(y_start=1, y_end=1)),
        st.just(q.up(window=4)),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.lists(children, min_size=2, max_size=3).map(lambda c: Concat(tuple(c))),
            st.lists(children, min_size=2, max_size=3).map(lambda c: Or(tuple(c))),
            st.lists(children, min_size=2, max_size=3).map(lambda c: And(tuple(c))),
        ),
        max_leaves=5,
    )


class TestRoundTrip:
    @given(ast_strategy())
    def test_parse_inverts_printer(self, tree):
        assert parse(to_regex(tree)) == tree

    def test_round_trip_nested(self):
        text = "[x.s=2,x.e=10,p=[p=up][p=down]]"
        node = parse(text)
        assert parse(to_regex(node)) == node

    def test_round_trip_sketch(self):
        text = "[v=(0:1,1:5,2:2)]"
        node = parse(text)
        assert parse(to_regex(node)) == node
