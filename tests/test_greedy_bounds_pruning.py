"""Tests for the greedy baseline, Table 7 bounds, and two-stage pruning."""

import numpy as np

from repro.algebra import builder as q
from repro.engine.bounds import chain_bounds, level_slopes, query_bounds, query_upper_bound
from repro.engine.chains import compile_query
from repro.engine.dynamic import solve_query
from repro.engine.greedy import greedy_run_solver
from repro.engine.pruning import PruningReport, decimate, is_prunable, prune_and_rank
from repro.engine.segment_tree import segment_tree_run_solver

from tests.conftest import make_trendline


class TestGreedy:
    def test_valid_partition(self, noisy_up_down_up):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        result = solve_query(noisy_up_down_up, compiled, run_solver=greedy_run_solver)
        placements = result.solution.placements
        assert placements[0].start == 0
        assert placements[-1].end == noisy_up_down_up.n_bins
        for left, right in zip(placements, placements[1:]):
            assert left.end == right.start
            assert right.end - right.start >= 2

    def test_never_beats_dp(self):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        for seed in range(6):
            rng = np.random.default_rng(seed + 100)
            trendline = make_trendline(rng.normal(0, 1, 40).cumsum(), key=seed)
            dp = solve_query(trendline, compiled)
            greedy = solve_query(trendline, compiled, run_solver=greedy_run_solver)
            assert greedy.score <= dp.score + 1e-9

    def test_good_on_clean_shapes(self, up_down_up):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        dp = solve_query(up_down_up, compiled)
        greedy = solve_query(up_down_up, compiled, run_solver=greedy_run_solver)
        assert greedy.score >= 0.8 * dp.score

    def test_single_unit(self, rising_line):
        compiled = compile_query(q.up())
        result = solve_query(rising_line, compiled, run_solver=greedy_run_solver)
        assert result.solution.boundaries == [0, rising_line.n_bins]


class TestBounds:
    def _grid(self, trendline, size):
        n = trendline.n_bins
        return [(s, min(s + size, n)) for s in range(0, n - 1, size)]

    def test_level_slopes_shape(self, noisy_up_down_up):
        ranges = self._grid(noisy_up_down_up, 8)
        slopes = level_slopes(noisy_up_down_up, ranges)
        assert len(slopes) == len(ranges)

    def test_tree_bounds_contain_engine_scores(self):
        """The §6.3 pruning invariant: UB from current tables >= final score.

        Bounds from raw coarse windows are NOT valid for placements finer
        than the window (a fine 'down' segment disappears inside a big
        rising window), so the driver bounds from the entries' recorded
        placements instead — checked here at every level.
        """
        from repro.engine.pruning import tree_upper_bound
        from repro.engine.segment_tree import IncrementalSegmentTree

        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        chain = compiled.chains[0]
        for seed in range(8):
            rng = np.random.default_rng(seed)
            trendline = make_trendline(rng.normal(0, 1, 64).cumsum(), key=seed)
            result = solve_query(trendline, compiled, run_solver=segment_tree_run_solver)
            tree = IncrementalSegmentTree(trendline, list(chain.units), 0, trendline.n_bins)
            while not tree.done:
                tree.step()
                upper = tree_upper_bound(trendline, chain, tree)
                assert result.score <= upper + 1e-6

    def test_grid_bounds_valid_at_fine_granularity(self):
        """Leaf-granularity window bounds hold (the paper's 'loose' case)."""
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        for seed in range(6):
            rng = np.random.default_rng(seed)
            trendline = make_trendline(rng.normal(0, 1, 64).cumsum(), key=seed)
            result = solve_query(trendline, compiled, run_solver=segment_tree_run_solver)
            lower, upper = query_bounds(trendline, compiled, self._grid(trendline, 2))
            assert result.score <= upper + 0.1

    def test_chain_bounds_weighting(self, rising_line):
        compiled = compile_query(q.concat(q.up(), q.up()))
        slopes = level_slopes(rising_line, self._grid(rising_line, 8))
        lower, upper = chain_bounds(rising_line, compiled.chains[0], slopes)
        assert -1.0 <= lower <= upper <= 1.0

    def test_query_upper_bound_grid(self, noisy_up_down_up):
        compiled = compile_query(q.concat(q.up(), q.down()))
        upper = query_upper_bound(noisy_up_down_up, compiled, 8)
        result = solve_query(noisy_up_down_up, compiled, run_solver=segment_tree_run_solver)
        assert result.score <= upper + 1e-6


class TestPruning:
    def _collection(self, n=40, length=64):
        """One planted up-down-up needle among random walks."""
        rng = np.random.default_rng(0)
        lines = []
        needle = np.concatenate([
            np.linspace(0, 8, length // 3),
            np.linspace(8, 1, length // 3),
            np.linspace(1, 9, length - 2 * (length // 3)),
        ])
        lines.append(make_trendline(needle + rng.normal(0, 0.2, length), key="needle"))
        for index in range(n - 1):
            lines.append(
                make_trendline(rng.normal(0, 1, length).cumsum(), key="walk{}".format(index))
            )
        return lines

    def test_is_prunable(self):
        assert is_prunable(compile_query(q.concat(q.up(), q.down())))
        assert not is_prunable(compile_query(q.concat(q.up(x_start=0, x_end=5), q.down())))
        assert not is_prunable(compile_query(q.up(window=4)))

    def test_decimate(self, noisy_up_down_up):
        reduced = decimate(noisy_up_down_up, 16)
        assert reduced.n_bins <= 32
        untouched = decimate(noisy_up_down_up, 1000)
        assert untouched.n_bins == noisy_up_down_up.n_bins

    def test_finds_the_needle(self):
        lines = self._collection()
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        report = PruningReport()
        ranked = prune_and_rank(lines, compiled, k=3, report=report)
        assert ranked[0][0].key == "needle"
        assert report.candidates == len(lines)
        assert report.completed >= 3

    def test_agrees_with_unpruned_topk(self):
        lines = self._collection(n=25)
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        pruned = prune_and_rank(lines, compiled, k=5)
        pruned_keys = [trendline.key for trendline, _ in pruned]
        full = sorted(
            (
                (tl, solve_query(tl, compiled, run_solver=segment_tree_run_solver))
                for tl in lines
            ),
            key=lambda item: -item[1].score,
        )[:5]
        full_keys = [tl.key for tl, _ in full]
        overlap = len(set(pruned_keys) & set(full_keys))
        assert overlap >= 4  # sampling stage may perturb the boundary case

    def test_prunes_some_candidates(self):
        lines = self._collection(n=60)
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        report = PruningReport()
        prune_and_rank(lines, compiled, k=1, report=report)
        assert report.pruned + report.completed == len(
            [tl for tl in lines if tl.n_bins >= 6]
        )
