"""Unit tests for the shared-memory transport (repro.engine.shm)."""

import numpy as np
import pytest

from repro.algebra import builder as q
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine import shm
from repro.engine.cache import table_fingerprint
from repro.engine.chains import compile_query
from repro.engine.executor import ShapeSearchEngine
from repro.engine.parallel import (
    make_chunks,
    make_range_chunks,
    merge_shard_results,
    score_shard,
    score_shard_range,
)
from repro.errors import ExecutionError

from tests.conftest import make_trendline

QUERY = compile_query(q.concat(q.up(), q.down()))


def _collection(count=10, seed=3, points=30):
    rng = np.random.default_rng(seed)
    return [
        make_trendline(rng.normal(0, 1, points).cumsum(), key="s{:02d}".format(index))
        for index in range(count)
    ]


def _signature(matches):
    return [(m.key, m.score) for m in matches]


class TestCollectionRoundtrip:
    def test_attach_reconstructs_identical_trendlines(self):
        trendlines = _collection()
        handle, segment = shm.publish_trendlines(trendlines)
        try:
            rebuilt, attachment = shm.attach_collection(handle)
            assert len(rebuilt) == len(trendlines)
            for original, copy in zip(trendlines, rebuilt):
                assert copy.key == original.key
                assert copy.y_mean == original.y_mean
                assert copy.y_std == original.y_std
                assert copy.offset == original.offset
                assert np.array_equal(copy.x, original.x)
                assert np.array_equal(copy.y, original.y)
                assert np.array_equal(copy.bin_x, original.bin_x)
                assert np.array_equal(copy.norm_bin_y, original.norm_bin_y)
                assert copy.prefix.bins == original.prefix.bins
                assert np.array_equal(copy.prefix.sxy, original.prefix.sxy)
            attachment.close()
        finally:
            segment.close()
            segment.unlink()

    def test_attached_arrays_are_read_only_views(self):
        trendlines = _collection(count=3)
        handle, segment = shm.publish_trendlines(trendlines)
        try:
            rebuilt, attachment = shm.attach_collection(handle)
            for trendline in rebuilt:
                assert not trendline.norm_bin_y.flags.writeable
                assert trendline.norm_bin_y.base is not None  # a view, not a copy
                with pytest.raises((ValueError, RuntimeError)):
                    trendline.norm_bin_y[0] = 99.0
            attachment.close()
        finally:
            segment.close()
            segment.unlink()

    def test_attached_collection_scores_identically(self):
        trendlines = _collection()
        handle, segment = shm.publish_trendlines(trendlines)
        try:
            rebuilt, attachment = shm.attach_collection(handle)
            original = score_shard(trendlines, 0, QUERY, k=5)
            reattached = score_shard(rebuilt, 0, QUERY, k=5)
            assert [
                (score, position, trendline.key, result.score)
                for score, position, trendline, result in original.items
            ] == [
                (score, position, trendline.key, result.score)
                for score, position, trendline, result in reattached.items
            ]
            attachment.close()
        finally:
            segment.close()
            segment.unlink()


class TestWorkerResolution:
    def test_publisher_resolves_to_original_objects(self):
        trendlines = _collection(count=4)
        session = shm.ShmSession()
        try:
            handle = session.collection_handle(trendlines)
            assert shm.resolve_collection(handle) is trendlines
        finally:
            session.close()

    def test_score_shard_range_matches_list_path(self):
        trendlines = _collection(count=12)
        session = shm.ShmSession()
        try:
            handle = session.collection_handle(trendlines)
            query_ref = session.query_handle(QUERY)
            ranges = make_range_chunks(len(handle), workers=3, chunk_size=4)
            shards = [
                score_shard_range(handle, start, end, query_ref, 4)
                for start, end in ranges
            ]
            expected = [
                score_shard(chunk, base, QUERY, 4)
                for base, chunk in make_chunks(trendlines, workers=3, chunk_size=4)
            ]
            merged = merge_shard_results(shards, 4)
            merged_expected = merge_shard_results(expected, 4)
            assert [
                (score, position, trendline.key)
                for score, position, trendline, _ in merged
            ] == [
                (score, position, trendline.key)
                for score, position, trendline, _ in merged_expected
            ]
        finally:
            session.close()

    def test_resolve_query_passes_compiled_through(self):
        assert shm.resolve_query(QUERY) is QUERY


class TestRangeChunks:
    def test_ranges_cover_count_in_order(self):
        ranges = make_range_chunks(10, workers=3, chunk_size=4)
        assert ranges == [(0, 4), (4, 8), (8, 10)]

    def test_matches_object_chunking(self):
        trendlines = _collection(count=11)
        ranges = make_range_chunks(len(trendlines), workers=4)
        chunks = make_chunks(trendlines, workers=4)
        assert [start for start, _end in ranges] == [base for base, _ in chunks]
        assert [end - start for start, end in ranges] == [
            len(chunk) for _, chunk in chunks
        ]

    def test_empty_and_invalid(self):
        assert make_range_chunks(0, workers=4) == []
        with pytest.raises(ExecutionError):
            make_range_chunks(5, workers=2, chunk_size=0)


class TestQueryHandle:
    def test_publish_resolve_roundtrip_across_store(self):
        session = shm.ShmSession()
        try:
            handle = session.query_handle(QUERY)
            # Simulate a worker: drop the publisher-side registry entry so
            # resolution must go through the shared segment.
            entry = shm._LOCAL.pop(handle.token)
            try:
                resolved = shm.resolve_query(handle)
            finally:
                shm._LOCAL[handle.token] = entry
                shm._WORKER_STORE.pop(handle.token, None)
            assert resolved is not QUERY
            assert len(resolved.chains) == len(QUERY.chains)
            assert resolved.chains[0].k == QUERY.chains[0].k
        finally:
            session.close()


class TestTableExport:
    def _table(self):
        return Table.from_arrays(
            z=np.array(["a", "a", "b", "b"], dtype=object),
            x=np.array([0.0, 1.0, 0.0, 1.0]),
            y=np.array([1.0, 2.0, 3.0, 4.0]),
        )

    def test_roundtrip_preserves_columns_and_fingerprint(self):
        table = self._table()
        handle, segment = shm.publish_table(table)
        try:
            rebuilt, attachment = shm.attach_table(handle)
            assert rebuilt.column_names == table.column_names
            assert np.array_equal(rebuilt.column("x"), table.column("x"))
            assert np.array_equal(rebuilt.column("y"), table.column("y"))
            assert [str(v) for v in rebuilt.column("z")] == ["a", "a", "b", "b"]
            # The pre-seeded fingerprint keys the same cache entries.
            assert table_fingerprint(rebuilt) == table_fingerprint(table)
            attachment.close()
        finally:
            segment.close()
            segment.unlink()

    def test_numeric_columns_are_zero_copy_views(self):
        table = self._table()
        handle, segment = shm.publish_table(table)
        try:
            rebuilt, attachment = shm.attach_table(handle)
            column = rebuilt.column("x")
            assert not column.flags.writeable
            assert column.base is not None
            attachment.close()
        finally:
            segment.close()
            segment.unlink()

    def test_from_shared_rejects_mismatched_lengths(self):
        with pytest.raises(Exception):
            Table.from_shared(
                {"a": np.zeros(3), "b": np.zeros(4)}, fingerprint="x"
            )

    def test_session_memoizes_by_fingerprint(self):
        table = self._table()
        session = shm.ShmSession()
        try:
            first = session.table_handle(table)
            second = session.table_handle(table)
            assert first is second
            assert shm.resolve_table(first) is table  # publisher short-circuit
        finally:
            session.close()


class TestHandleSize:
    def test_handle_pickles_small_regardless_of_collection_size(self):
        import pickle

        small = _collection(count=2)
        large = _collection(count=40)
        session = shm.ShmSession()
        try:
            small_handle = session.collection_handle(small)
            large_handle = session.collection_handle(large)
            # The per-trendline manifest lives inside the segment, so the
            # handle that travels with every range task stays O(1) (a few
            # bytes of integer-width jitter aside).
            assert len(pickle.dumps(large_handle)) < len(pickle.dumps(small_handle)) + 16
            assert len(pickle.dumps(large_handle)) < 256
            assert len(large_handle) == 40
        finally:
            session.close()


class TestBoundedResidency:
    def test_session_collection_memo_is_lru_bounded(self):
        session = shm.ShmSession()
        try:
            collections = [
                _collection(count=2, seed=seed)
                for seed in range(session.MAX_COLLECTIONS + 2)
            ]
            handles = [session.collection_handle(c) for c in collections]
            assert len(session._collections) == session.MAX_COLLECTIONS
            # The oldest segments were unlinked, the newest still live.
            with pytest.raises(FileNotFoundError):
                shm.attach_collection(handles[0])
            rebuilt, attachment = shm.attach_collection(handles[-1])
            assert rebuilt[0].key == collections[-1][0].key
            attachment.close()
        finally:
            session.close()

    def test_mutated_collection_is_republished(self):
        # The session memoizes by list identity; replacing an element must
        # invalidate the memo, not serve the stale segment (regression:
        # the shm path silently returned the old top-k).
        trendlines = _collection(count=6)
        session = shm.ShmSession()
        try:
            first = session.collection_handle(trendlines)
            trendlines[0] = make_trendline(
                np.linspace(0.0, 9.0, 30), key="replaced"
            )
            second = session.collection_handle(trendlines)
            assert second.token != first.token
            rebuilt, attachment = shm.attach_collection(second)
            assert rebuilt[0].key == "replaced"
            attachment.close()
        finally:
            session.close()

    def test_mutated_collection_end_to_end(self):
        trendlines = _collection(count=8)
        with ShapeSearchEngine(workers=2, backend="process") as engine:
            engine.rank(trendlines, QUERY, k=3)
            trendlines.insert(
                0, make_trendline(np.linspace(0.0, 9.0, 40), key="late-add")
            )
            mutated = engine.rank(trendlines, QUERY, k=3)
            expected = ShapeSearchEngine().rank(trendlines, QUERY, k=3)
        assert _signature(mutated) == _signature(expected)

    def test_acquire_pins_both_handles_atomically(self):
        trendlines = _collection(count=3)
        session = shm.ShmSession()
        try:
            handle, query_ref = session.acquire(trendlines, QUERY)
            assert session._pins[handle.token] == 1
            assert session._pins[query_ref.token] == 1
            session.release_collection(trendlines)  # deferred: pinned
            rebuilt, attachment = shm.attach_collection(handle)
            attachment.close()
            session.unpin(handle, query_ref)
            with pytest.raises(FileNotFoundError):
                shm.attach_collection(handle)
        finally:
            session.close()

    def test_pinned_segment_release_is_deferred(self):
        trendlines = _collection(count=3)
        session = shm.ShmSession()
        try:
            handle = session.collection_handle(trendlines)
            session.pin(handle)
            session.release_collection(trendlines)
            # Still attachable: the unlink waits for the in-flight pin.
            rebuilt, attachment = shm.attach_collection(handle)
            attachment.close()
            session.unpin(handle)
            with pytest.raises(FileNotFoundError):
                shm.attach_collection(handle)
        finally:
            session.close()

    def test_worker_store_is_lru_bounded(self):
        saved = dict(shm._WORKER_STORE)
        shm._WORKER_STORE.clear()
        try:
            for index in range(shm._MAX_WORKER_ENTRIES + 3):
                shm._store_put("tok{}".format(index), shm._Attachment(index, None))
            assert len(shm._WORKER_STORE) == shm._MAX_WORKER_ENTRIES
            assert "tok0" not in shm._WORKER_STORE
        finally:
            shm._WORKER_STORE.clear()
            shm._WORKER_STORE.update(saved)

    def test_shared_cache_registers_one_listener(self):
        from repro.engine.cache import EngineCache

        cache = EngineCache()
        first = ShapeSearchEngine(cache=cache)
        second = ShapeSearchEngine(cache=cache)
        assert cache.trendlines._evict_listeners == [shm.release_evicted]
        first.close()
        second.close()


class TestSessionLifecycle:
    def test_close_unlinks_segments(self):
        trendlines = _collection(count=3)
        session = shm.ShmSession()
        handle = session.collection_handle(trendlines)
        session.close()
        with pytest.raises(FileNotFoundError):
            shm.attach_collection(handle)

    def test_close_is_idempotent(self):
        session = shm.ShmSession()
        session.collection_handle(_collection(count=2))
        session.close()
        session.close()
        assert session.closed

    def test_publish_after_close_rejected(self):
        session = shm.ShmSession()
        session.close()
        with pytest.raises(ExecutionError):
            session.collection_handle(_collection(count=2))

    def test_release_collection_unlinks_only_that_segment(self):
        first, second = _collection(count=2, seed=1), _collection(count=2, seed=2)
        session = shm.ShmSession()
        try:
            handle_first = session.collection_handle(first)
            handle_second = session.collection_handle(second)
            session.release_collection(first)
            with pytest.raises(FileNotFoundError):
                shm.attach_collection(handle_first)
            rebuilt, attachment = shm.attach_collection(handle_second)
            assert rebuilt[0].key == second[0].key
            attachment.close()
            # Releasing again (or an unknown value) is a no-op.
            session.release_collection(first)
            session.release_collection(object())
        finally:
            session.close()

    def test_context_manager_closes(self):
        with shm.ShmSession() as session:
            handle = session.collection_handle(_collection(count=2))
        assert session.closed
        with pytest.raises(FileNotFoundError):
            shm.attach_collection(handle)


class TestEngineIntegration:
    def test_engine_close_releases_session(self):
        trendlines = _collection(count=8)
        engine = ShapeSearchEngine(workers=2, backend="process")
        engine.rank(trendlines, QUERY, k=3)
        session = engine._shm_box[0]
        assert session is not None and not session.closed
        engine.close()
        assert session.closed
        engine.close()  # idempotent

    def test_engine_finalizer_releases_session(self):
        trendlines = _collection(count=8)
        engine = ShapeSearchEngine(workers=2, backend="process")
        engine.rank(trendlines, QUERY, k=3)
        session = engine._shm_box[0]
        engine._finalizer()  # what gc / interpreter exit runs
        assert session.closed

    def test_trendline_cache_eviction_releases_segment(self):
        from repro.engine.cache import EngineCache, LRUCache

        cache = EngineCache(trendlines=LRUCache(capacity=1), plans=LRUCache(capacity=8))
        rng = np.random.default_rng(0)
        tables = []
        for _ in range(2):
            zs, xs, ys = [], [], []
            for key in ("a", "b", "c"):
                series = rng.normal(0, 1, 25).cumsum()
                for index, value in enumerate(series):
                    zs.append(key)
                    xs.append(float(index))
                    ys.append(float(value))
            tables.append(
                Table.from_arrays(
                    z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys)
                )
            )
        params = VisualParams(z="z", x="x", y="y")
        node = q.concat(q.up(), q.down())
        with ShapeSearchEngine(workers=2, backend="process", cache=cache) as engine:
            engine.run(tables[0], params, node, k=2)
            session = engine._shm_box[0]
            published_before = len(session._collections)
            engine.run(tables[1], params, node, k=2)  # evicts tables[0] entry
            assert cache.trendlines.stats.evictions == 1
            assert len(session._collections) == published_before  # released + added

    def test_shm_disabled_still_correct(self):
        trendlines = _collection(count=10)
        sequential = ShapeSearchEngine().rank(trendlines, QUERY, k=4)
        with ShapeSearchEngine(workers=2, backend="process", shm=False) as engine:
            pickled = engine.rank(trendlines, QUERY, k=4)
            assert engine._shm_box[0] is None  # transport never engaged
        assert _signature(sequential) == _signature(pickled)


class TestAttachFailureLifecycle:
    """A failing attach must close its segment (REP023 regression tests).

    Before the fix, attach_collection leaked its mapping when the
    manifest-layout check raised, and attach_table / resolve_query leaked
    on corrupt payloads — every retry then pinned one more /dev/shm
    mapping for the worker's lifetime.
    """

    @staticmethod
    def _tracking_attach(monkeypatch, closed):
        real = shm._attach_segment

        def tracking(name):
            segment = real(name)
            original_close = segment.close

            def close():
                closed.append(name)
                original_close()

            segment.close = close
            return segment

        monkeypatch.setattr(shm, "_attach_segment", tracking)

    def test_attach_collection_closes_segment_on_manifest_mismatch(
        self, monkeypatch
    ):
        handle, segment = shm.publish_trendlines(_collection(count=3))
        closed = []
        try:
            self._tracking_attach(monkeypatch, closed)
            # A publisher/worker version skew: the attaching side expects
            # a different per-trendline array count than was published.
            monkeypatch.setattr(shm, "_ARRAYS_PER_TRENDLINE", 11)
            with pytest.raises(ExecutionError, match="manifest layout mismatch"):
                shm.attach_collection(handle)
            assert closed == [handle.name]
        finally:
            segment.close()
            segment.unlink()

    def test_attach_collection_closes_segment_on_corrupt_manifest(
        self, monkeypatch
    ):
        import dataclasses

        handle, segment = shm.publish_trendlines(_collection(count=3))
        closed = []
        try:
            self._tracking_attach(monkeypatch, closed)
            truncated = dataclasses.replace(handle, manifest_nbytes=3)
            with pytest.raises(Exception):
                shm.attach_collection(truncated)
            assert closed == [handle.name]
        finally:
            segment.close()
            segment.unlink()

    def test_attach_table_closes_segment_on_bad_dtype(self, monkeypatch):
        import dataclasses

        table = Table.from_arrays(x=np.arange(6.0), y=np.arange(6.0) * 2)
        handle, segment = shm.publish_table(table)
        closed = []
        try:
            self._tracking_attach(monkeypatch, closed)
            name, _, offset, nbytes = handle.columns[0]
            bad = dataclasses.replace(
                handle, columns=((name, "not-a-dtype", offset, nbytes),)
            )
            with pytest.raises(TypeError):
                shm.attach_table(bad)
            assert closed == [handle.name]
        finally:
            segment.close()
            segment.unlink()

    def test_attach_succeeds_without_closing(self, monkeypatch):
        handle, segment = shm.publish_trendlines(_collection(count=3))
        closed = []
        try:
            self._tracking_attach(monkeypatch, closed)
            rebuilt, attachment = shm.attach_collection(handle)
            assert closed == []  # success hands the open segment to the caller
            assert len(rebuilt) == 3
            attachment.close()
            assert closed == [handle.name]
        finally:
            segment.close()
            segment.unlink()

    def test_resolve_query_closes_segment_on_corrupt_payload(self, monkeypatch):
        import dataclasses

        handle, segment = shm.publish_query(QUERY)
        closed = []
        try:
            self._tracking_attach(monkeypatch, closed)
            # New token: miss the publisher-side registry so the attach
            # path actually runs; truncated nbytes corrupts the pickle.
            corrupt = dataclasses.replace(handle, token="corrupt", nbytes=3)
            with pytest.raises(Exception):
                shm.resolve_query(corrupt)
            assert closed == [handle.name]
        finally:
            segment.close()
            segment.unlink()
