"""Tests for the session API (Figure 3 seam) and the ASCII renderer."""

import numpy as np
import pytest

from repro import ShapeSearch, parse_query
from repro.algebra.nodes import Concat
from repro.data.table import Table
from repro.engine.executor import ShapeSearchEngine
from repro.errors import ShapeQuerySyntaxError
from repro.render import render_match, render_matches, render_trendline, sparkline

from tests.conftest import make_trendline


def _table():
    zs, xs, ys = [], [], []
    shapes = {
        "peak": np.concatenate([np.linspace(0, 9, 15), np.linspace(9, 0, 15)]),
        "rise": np.linspace(0, 9, 30),
        "fall": np.linspace(9, 0, 30),
    }
    for key, values in shapes.items():
        for index, value in enumerate(values):
            zs.append(key)
            xs.append(float(index))
            ys.append(float(value))
    return Table.from_arrays(z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys))


@pytest.fixture
def session(rule_tagger):
    return ShapeSearch(_table(), tagger=rule_tagger)


class TestParseQuery:
    def test_regex_string(self):
        node = parse_query("[p=up][p=down]")
        assert isinstance(node, Concat)

    def test_nl_fallback(self, rule_tagger):
        node = parse_query("rising then falling", tagger=rule_tagger)
        assert isinstance(node, Concat)

    def test_ast_passthrough(self):
        from repro.algebra import builder as q

        node = q.up()
        assert parse_query(node) is node

    def test_bracket_strings_must_be_regex(self, rule_tagger):
        with pytest.raises(ShapeQuerySyntaxError):
            parse_query("[p=wiggly]", tagger=rule_tagger)

    def test_unsupported_type(self):
        with pytest.raises(ShapeQuerySyntaxError):
            parse_query(42)


class TestSession:
    def test_regex_search(self, session):
        matches = session.prepare("[p=up][p=down]", z="z", x="x", y="y").run(k=1)
        assert matches[0].key == "peak"

    def test_nl_search(self, session):
        matches = session.prepare("rising then falling", z="z", x="x", y="y").run(k=1)
        assert matches[0].key == "peak"

    def test_sketch_search_precise(self, session):
        pixels = [(float(i), float(i)) for i in range(30)]
        matches = session.search_sketch(pixels, z="z", x="x", y="y", k=1)
        assert matches[0].key == "rise"

    def test_sketch_search_blurry(self, session):
        points = [(float(i), float(i)) for i in range(15)]
        points += [(float(15 + i), float(14 - i)) for i in range(15)]
        matches = session.search_sketch(points, z="z", x="x", y="y", mode="blurry", k=1)
        assert matches[0].key == "peak"

    def test_filters(self, session):
        matches = session.prepare(
            "[p=up]", z="z", x="x", y="y", filters=("z != rise",)
        ).run(k=3)
        assert all(match.key != "rise" for match in matches)

    def test_explain(self, session):
        assert session.explain("rising then falling") == "[p=up][p=down]"

    def test_from_records(self):
        records = [
            {"z": "a", "x": float(i), "y": float(i)} for i in range(10)
        ] + [{"z": "b", "x": float(i), "y": float(9 - i)} for i in range(10)]
        session = ShapeSearch.from_records(records)
        matches = session.prepare("[p=up]", z="z", x="x", y="y").run(k=1)
        assert matches[0].key == "a"

    def test_from_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        rows = ["z,x,y"] + ["a,{},{}".format(i, i) for i in range(10)]
        path.write_text("\n".join(rows) + "\n")
        session = ShapeSearch.from_csv(str(path))
        assert session.prepare("[p=up]", z="z", x="x", y="y").run(k=1)

    def test_custom_engine(self):
        engine = ShapeSearchEngine(algorithm="dp")
        session = ShapeSearch(_table(), engine=engine)
        assert session.prepare("[p=down]", z="z", x="x", y="y").run(k=1)[0].key == "fall"


class TestRender:
    def test_sparkline_shape(self):
        line = sparkline(np.linspace(0, 1, 100), width=40)
        assert len(line) == 40
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_constant(self):
        assert sparkline(np.full(10, 3.0), width=10) == "▁" * 10

    def test_sparkline_empty(self):
        assert sparkline(np.array([])) == ""

    def test_render_trendline(self):
        tl = make_trendline(np.linspace(0, 5, 30), key="demo")
        text = render_trendline(tl)
        assert "demo" in text

    def test_render_match_includes_segments(self):
        from repro.algebra import builder as q

        tl = make_trendline(
            np.concatenate([np.linspace(0, 5, 15), np.linspace(5, 0, 15)]), key="peak"
        )
        engine = ShapeSearchEngine()
        match = engine.rank([tl], q.up() >> q.down(), k=1)[0]
        text = render_match(match)
        assert "score=" in text
        assert "seg0" in text and "seg1" in text

    def test_render_matches_multi(self):
        from repro.algebra import builder as q

        lines = [
            make_trendline(np.linspace(0, 5, 20), key="a"),
            make_trendline(np.linspace(5, 0, 20), key="b"),
        ]
        engine = ShapeSearchEngine()
        matches = engine.rank(lines, q.up(), k=2)
        text = render_matches(matches)
        assert text.count("score=") == 2
