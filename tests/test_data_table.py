"""Tests for the columnar table substrate and filters (§5.1)."""

import json

import numpy as np
import pytest

from repro.data.filters import Filter, apply_filters, parse_filter
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.errors import DataError


class TestConstruction:
    def test_from_arrays(self):
        table = Table.from_arrays(a=[1, 2, 3], b=["x", "y", "z"])
        assert len(table) == 3
        assert set(table.column_names) == {"a", "b"}

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            Table.from_arrays(a=[1, 2], b=[1])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            Table({})

    def test_from_records(self):
        table = Table.from_records([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert list(table.column("a")) == [1.0, 2.0]
        assert table.column("b").dtype == object

    def test_from_csv(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("z,x,y\na,0,1.5\na,1,2.5\nb,0,3.0\n")
        table = Table.from_csv(str(path))
        assert len(table) == 3
        assert table.column("x").dtype == float
        assert table.column("z").dtype == object

    def test_from_csv_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            Table.from_csv(str(path))

    def test_from_json(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text(json.dumps([{"a": 1, "b": 2}, {"a": 3, "b": 4}]))
        table = Table.from_json(str(path))
        assert list(table.column("a")) == [1.0, 3.0]

    def test_from_json_requires_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"a": 1}))
        with pytest.raises(DataError):
            Table.from_json(str(path))


class TestOperations:
    def _table(self):
        return Table.from_arrays(
            z=np.array(["b", "a", "b", "a"], dtype=object),
            x=np.array([1.0, 0.0, 0.0, 1.0]),
            y=np.array([10.0, 20.0, 30.0, 40.0]),
        )

    def test_unknown_column(self):
        with pytest.raises(DataError) as excinfo:
            self._table().column("nope")
        assert "available" in str(excinfo.value)

    def test_contains(self):
        assert "z" in self._table()
        assert "w" not in self._table()

    def test_where_mask(self):
        table = self._table()
        subset = table.where(table.column("y") > 15)
        assert len(subset) == 3

    def test_where_length_mismatch(self):
        with pytest.raises(DataError):
            self._table().where(np.array([True]))

    def test_sort_by_multiple_keys(self):
        table = self._table().sort_by("z", "x")
        assert list(table.column("z")) == ["a", "a", "b", "b"]
        assert list(table.column("x")) == [0.0, 1.0, 0.0, 1.0]

    def test_group_by_first_seen_order(self):
        groups = list(self._table().group_by("z"))
        assert [key for key, _ in groups] == ["b", "a"]
        assert list(groups[0][1]) == [0, 2]


class TestFilters:
    def _table(self):
        return Table.from_arrays(
            name=np.array(["a", "b", "c"], dtype=object),
            value=np.array([1.0, 5.0, 9.0]),
        )

    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("==", 5.0, ["b"]),
            ("!=", 5.0, ["a", "c"]),
            (">", 4.0, ["b", "c"]),
            (">=", 5.0, ["b", "c"]),
            ("<", 5.0, ["a"]),
            ("<=", 5.0, ["a", "b"]),
            ("between", (2, 8), ["b"]),
        ],
    )
    def test_comparison_ops(self, op, value, expected):
        table = self._table()
        mask = Filter("value", op, value).mask(table)
        assert list(table.column("name")[mask]) == expected

    def test_in_op(self):
        table = self._table()
        mask = Filter("name", "in", ("a", "c")).mask(table)
        assert list(table.column("name")[mask]) == ["a", "c"]

    def test_unknown_op(self):
        with pytest.raises(DataError):
            Filter("value", "~", 1)

    def test_parse_filter(self):
        parsed = parse_filter("value >= 5")
        assert parsed == Filter("value", ">=", 5.0)
        assert parse_filter("name == b") == Filter("name", "==", "b")
        assert parse_filter("luminosity < 90").op == "<"
        assert parse_filter("x = 3") == Filter("x", "==", 3.0)

    def test_parse_filter_rejects_garbage(self):
        with pytest.raises(DataError):
            parse_filter("???")

    def test_apply_filters_conjunction(self):
        table = self._table()
        result = apply_filters(table, [parse_filter("value > 1"), parse_filter("value < 9")])
        assert list(result.column("name")) == ["b"]

    def test_apply_no_filters(self):
        table = self._table()
        assert apply_filters(table, []) is table


class TestAppendRows:
    def _table(self):
        return Table.from_arrays(
            z=np.array(["a", "a", "b"], dtype=object),
            x=np.array([0.0, 1.0, 0.0]),
            y=np.array([1.0, 2.0, 3.0]),
        )

    def test_rows_appended_original_untouched(self):
        table = self._table()
        grown = table.append_rows([{"z": "b", "x": 1.0, "y": 4.0}])
        assert len(table) == 3 and len(grown) == 4
        assert grown.column("z").tolist() == ["a", "a", "b", "b"]
        assert grown.column("y").tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_returned_table_immutable(self):
        grown = self._table().append_rows([{"z": "b", "x": 1.0, "y": 4.0}])
        with pytest.raises(ValueError):
            grown.column("y")[0] = 99.0

    def test_incremental_fingerprint_matches_full_rehash(self):
        from repro.engine.cache import table_fingerprint

        table = self._table()
        table_fingerprint(table)  # establish the prior digest state
        grown = table.append_rows(
            [{"z": "b", "x": 1.0, "y": 4.0}, {"z": "c", "x": 0.0, "y": 5.0}]
        )
        # The extension pre-seeded the fingerprint: no rehash on use.
        assert grown._fingerprint is not None
        fresh = Table.from_arrays(
            z=np.array(["a", "a", "b", "b", "c"], dtype=object),
            x=np.array([0.0, 1.0, 0.0, 1.0, 0.0]),
            y=np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
        )
        assert grown._fingerprint == table_fingerprint(fresh)
        assert grown._fingerprint != table_fingerprint(table)

    def test_chained_appends_stay_incremental(self):
        from repro.engine.cache import table_fingerprint

        grown = self._table()
        for step in range(3):
            grown = grown.append_rows(
                [{"z": "s{}".format(step), "x": 0.0, "y": float(step)},
                 {"z": "s{}".format(step), "x": 1.0, "y": float(step + 1)}]
            )
            assert grown._fingerprint is not None
        rebuilt = Table.from_arrays(
            z=grown.column("z"), x=grown.column("x"), y=grown.column("y")
        )
        assert table_fingerprint(rebuilt) == grown._fingerprint

    def test_int_into_float_column_stays_incremental(self):
        from repro.engine.cache import table_fingerprint

        table = Table.from_arrays(a=np.array([1.0, 2.0]))
        grown = table.append_rows([{"a": 3}])
        assert grown._fingerprint is not None
        assert grown.column("a").dtype == np.float64
        assert grown._fingerprint == table_fingerprint(
            Table.from_arrays(a=np.array([1.0, 2.0, 3.0]))
        )

    def test_huge_int_append_widens_instead_of_crashing(self):
        from repro.engine.cache import table_fingerprint

        table = Table.from_arrays(a=np.array([1, 2, 3], dtype=np.int64))
        grown = table.append_rows([{"a": 2 ** 70}])
        # Widens to float (the _infer_array convention), no crash.
        assert grown.column("a").dtype == np.float64
        assert float(grown.column("a")[-1]) == float(2 ** 70)
        assert table_fingerprint(grown) == table_fingerprint(
            Table.from_arrays(a=np.array([1.0, 2.0, 3.0, float(2 ** 70)]))
        )

    def test_widening_append_falls_back_to_rehash(self):
        from repro.engine.cache import table_fingerprint

        table = Table.from_arrays(a=np.array([1, 2, 3]))
        grown = table.append_rows([{"a": 1.5}])
        # Value preserved (no silent truncation into the int column)...
        assert float(grown.column("a")[-1]) == 1.5
        # ...and the lazy full rehash still agrees with a fresh build.
        assert table_fingerprint(grown) == table_fingerprint(
            Table.from_arrays(a=np.array([1.0, 2.0, 3.0, 1.5]))
        )

    def test_unknown_column_rejected(self):
        with pytest.raises(DataError):
            self._table().append_rows([{"z": "c", "x": 0.0, "y": 1.0, "w": 9}])

    def test_tuple_keys_append(self):
        from repro.engine.cache import table_fingerprint

        keys = [("a", 1), ("b", 2)]
        z = np.empty(len(keys), dtype=object)
        for i, key in enumerate(keys):
            z[i] = key
        table = Table.from_arrays(z=z, x=np.array([0.0, 1.0]), y=np.array([1.0, 2.0]))
        table_fingerprint(table)
        grown = table.append_rows([{"z": ("c", 3), "x": 0.0, "y": 3.0}])
        assert grown.column("z").tolist() == [("a", 1), ("b", 2), ("c", 3)]
        rebuilt = Table.from_arrays(
            z=grown.column("z"), x=grown.column("x"), y=grown.column("y")
        )
        assert grown._fingerprint == table_fingerprint(rebuilt)

    def test_missing_column_rejected(self):
        # A forgotten key must not silently inject None/NaN into a series.
        with pytest.raises(DataError):
            self._table().append_rows([{"z": "c", "x": 0.0}])

    def test_empty_append_returns_self(self):
        table = self._table()
        assert table.append_rows([]) is table

    def test_streaming_workload_keeps_generation_consistent(self):
        """Appended tables generate exactly what a fresh build would."""
        from repro.engine.pipeline import generate_trendlines

        params = VisualParams(z="z", x="x", y="y")
        table = self._table()
        grown = table.append_rows(
            [{"z": "b", "x": 1.0, "y": 4.0}, {"z": "b", "x": 2.0, "y": 2.0}]
        )
        fresh = Table.from_arrays(
            z=np.array(["a", "a", "b", "b", "b"], dtype=object),
            x=np.array([0.0, 1.0, 0.0, 1.0, 2.0]),
            y=np.array([1.0, 2.0, 3.0, 4.0, 2.0]),
        )
        got = generate_trendlines(grown, params)
        expected = generate_trendlines(fresh, params)
        assert [t.key for t in got] == [t.key for t in expected]
        for a, b in zip(got, expected):
            np.testing.assert_array_equal(a.norm_bin_y, b.norm_bin_y)


class TestVisualParams:
    def test_string_filters_coerced(self):
        params = VisualParams(z="z", x="x", y="y", filters=("y > 5",))
        assert isinstance(params.filters[0], Filter)

    def test_bad_aggregate(self):
        with pytest.raises(DataError):
            VisualParams(z="z", x="x", y="y", aggregate="mode")

    def test_with_filters(self):
        params = VisualParams(z="z", x="x", y="y")
        extended = params.with_filters("y > 5")
        assert len(extended.filters) == 1
        assert len(params.filters) == 0

    def test_bad_filter_type(self):
        with pytest.raises(DataError):
            VisualParams(z="z", x="x", y="y", filters=(42,))
