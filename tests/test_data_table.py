"""Tests for the columnar table substrate and filters (§5.1)."""

import json

import numpy as np
import pytest

from repro.data.filters import Filter, apply_filters, parse_filter
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.errors import DataError


class TestConstruction:
    def test_from_arrays(self):
        table = Table.from_arrays(a=[1, 2, 3], b=["x", "y", "z"])
        assert len(table) == 3
        assert set(table.column_names) == {"a", "b"}

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            Table.from_arrays(a=[1, 2], b=[1])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            Table({})

    def test_from_records(self):
        table = Table.from_records([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert list(table.column("a")) == [1.0, 2.0]
        assert table.column("b").dtype == object

    def test_from_csv(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("z,x,y\na,0,1.5\na,1,2.5\nb,0,3.0\n")
        table = Table.from_csv(str(path))
        assert len(table) == 3
        assert table.column("x").dtype == float
        assert table.column("z").dtype == object

    def test_from_csv_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            Table.from_csv(str(path))

    def test_from_json(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text(json.dumps([{"a": 1, "b": 2}, {"a": 3, "b": 4}]))
        table = Table.from_json(str(path))
        assert list(table.column("a")) == [1.0, 3.0]

    def test_from_json_requires_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"a": 1}))
        with pytest.raises(DataError):
            Table.from_json(str(path))


class TestOperations:
    def _table(self):
        return Table.from_arrays(
            z=np.array(["b", "a", "b", "a"], dtype=object),
            x=np.array([1.0, 0.0, 0.0, 1.0]),
            y=np.array([10.0, 20.0, 30.0, 40.0]),
        )

    def test_unknown_column(self):
        with pytest.raises(DataError) as excinfo:
            self._table().column("nope")
        assert "available" in str(excinfo.value)

    def test_contains(self):
        assert "z" in self._table()
        assert "w" not in self._table()

    def test_where_mask(self):
        table = self._table()
        subset = table.where(table.column("y") > 15)
        assert len(subset) == 3

    def test_where_length_mismatch(self):
        with pytest.raises(DataError):
            self._table().where(np.array([True]))

    def test_sort_by_multiple_keys(self):
        table = self._table().sort_by("z", "x")
        assert list(table.column("z")) == ["a", "a", "b", "b"]
        assert list(table.column("x")) == [0.0, 1.0, 0.0, 1.0]

    def test_group_by_first_seen_order(self):
        groups = list(self._table().group_by("z"))
        assert [key for key, _ in groups] == ["b", "a"]
        assert list(groups[0][1]) == [0, 2]


class TestFilters:
    def _table(self):
        return Table.from_arrays(
            name=np.array(["a", "b", "c"], dtype=object),
            value=np.array([1.0, 5.0, 9.0]),
        )

    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("==", 5.0, ["b"]),
            ("!=", 5.0, ["a", "c"]),
            (">", 4.0, ["b", "c"]),
            (">=", 5.0, ["b", "c"]),
            ("<", 5.0, ["a"]),
            ("<=", 5.0, ["a", "b"]),
            ("between", (2, 8), ["b"]),
        ],
    )
    def test_comparison_ops(self, op, value, expected):
        table = self._table()
        mask = Filter("value", op, value).mask(table)
        assert list(table.column("name")[mask]) == expected

    def test_in_op(self):
        table = self._table()
        mask = Filter("name", "in", ("a", "c")).mask(table)
        assert list(table.column("name")[mask]) == ["a", "c"]

    def test_unknown_op(self):
        with pytest.raises(DataError):
            Filter("value", "~", 1)

    def test_parse_filter(self):
        parsed = parse_filter("value >= 5")
        assert parsed == Filter("value", ">=", 5.0)
        assert parse_filter("name == b") == Filter("name", "==", "b")
        assert parse_filter("luminosity < 90").op == "<"
        assert parse_filter("x = 3") == Filter("x", "==", 3.0)

    def test_parse_filter_rejects_garbage(self):
        with pytest.raises(DataError):
            parse_filter("???")

    def test_apply_filters_conjunction(self):
        table = self._table()
        result = apply_filters(table, [parse_filter("value > 1"), parse_filter("value < 9")])
        assert list(result.column("name")) == ["b"]

    def test_apply_no_filters(self):
        table = self._table()
        assert apply_filters(table, []) is table


class TestVisualParams:
    def test_string_filters_coerced(self):
        params = VisualParams(z="z", x="x", y="y", filters=("y > 5",))
        assert isinstance(params.filters[0], Filter)

    def test_bad_aggregate(self):
        with pytest.raises(DataError):
            VisualParams(z="z", x="x", y="y", aggregate="mode")

    def test_with_filters(self):
        params = VisualParams(z="z", x="x", y="y")
        extended = params.with_filters("y > 5")
        assert len(extended.filters) == 1
        assert len(params.filters) == 0

    def test_bad_filter_type(self):
        with pytest.raises(DataError):
            VisualParams(z="z", x="x", y="y", filters=(42,))
