"""Unit tests for AST nodes and operator composition (paper §3.2)."""

import pytest

from repro.algebra import builder as q
from repro.algebra.nodes import (
    And,
    Concat,
    Opposite,
    Or,
    ShapeSegment,
    count_concat_units,
)
from repro.algebra.primitives import Location, Pattern
from repro.errors import ShapeQueryValidationError


class TestShapeSegment:
    def test_needs_some_content(self):
        with pytest.raises(ShapeQueryValidationError):
            ShapeSegment()

    def test_location_only_segment_allowed(self):
        seg = ShapeSegment(location=Location(x_start=1, x_end=4))
        assert seg.effective_pattern.kind == "any"

    def test_sketch_and_pattern_conflict(self):
        from repro.algebra.primitives import Sketch

        with pytest.raises(ShapeQueryValidationError):
            ShapeSegment(pattern=Pattern(kind="up"), sketch=Sketch(points=((0, 0), (1, 1))))

    def test_with_helpers_produce_copies(self):
        seg = q.up()
        pinned = seg.with_location(Location(x_start=0, x_end=5))
        assert pinned is not seg
        assert pinned.location.is_x_pinned and seg.location.is_empty
        toggled = seg.toggled()
        assert toggled.negated and not seg.negated

    def test_fuzzy_flag(self):
        assert q.up().is_fuzzy
        assert not q.up(x_start=0, x_end=5).is_fuzzy


class TestOperators:
    def test_nary_operators_require_two_children(self):
        with pytest.raises(ShapeQueryValidationError):
            Concat((q.up(),))
        with pytest.raises(ShapeQueryValidationError):
            Or((q.up(),))
        with pytest.raises(ShapeQueryValidationError):
            And((q.up(),))

    def test_operator_sugar(self):
        a, b = q.up(), q.down()
        assert isinstance(a >> b, Concat)
        assert isinstance(a | b, Or)
        assert isinstance(a & b, And)
        assert isinstance(~a, Opposite)

    def test_walk_preorder(self):
        tree = q.up() >> (q.flat() | q.down())
        kinds = [type(node).__name__ for node in tree.walk()]
        assert kinds == ["Concat", "ShapeSegment", "Or", "ShapeSegment", "ShapeSegment"]

    def test_segments_left_to_right(self):
        tree = q.concat(q.up(), q.or_(q.flat(), q.down()), q.slope(45))
        kinds = [seg.pattern.kind for seg in tree.segments()]
        assert kinds == ["up", "flat", "down", "slope"]


class TestBuilder:
    def test_single_child_passthrough(self):
        seg = q.up()
        assert q.concat(seg) is seg
        assert q.or_(seg) is seg
        assert q.and_(seg) is seg

    def test_sharp_and_gradual(self):
        assert q.up(sharp=True).modifier.comparison == ">>"
        assert q.down(sharp=True).modifier.comparison == "<<"
        assert q.up(gradual=True).modifier.comparison == ">"
        with pytest.raises(ValueError):
            q.up(sharp=True, gradual=True)

    def test_repeated(self):
        seg = q.repeated(q.up(), low=2)
        assert seg.modifier.quantifier.low == 2

    def test_window(self):
        seg = q.up(window=5)
        assert seg.location.iterator.width == 5

    def test_position_builder(self):
        seg = q.position(index=0, comparison="<")
        assert seg.pattern.kind == "position"
        assert seg.modifier.comparison == "<"

    def test_nested_builder(self):
        inner = q.up() >> q.down()
        seg = q.nested(inner, x_start=2, x_end=10)
        assert seg.pattern.kind == "nested"
        assert seg.pattern.nested is inner


class TestCountConcatUnits:
    def test_plain_chain(self):
        assert count_concat_units(q.up() >> q.down() >> q.up()) == 3
        assert count_concat_units(q.concat(q.up(), q.down(), q.up())) == 3

    def test_or_takes_max(self):
        tree = q.or_(q.up(), q.concat(q.down(), q.up(), q.flat()))
        assert count_concat_units(tree) == 3

    def test_nested_mixture(self):
        tree = q.concat(q.up(), q.or_(q.flat(), q.concat(q.down(), q.up())))
        assert count_concat_units(tree) == 3

    def test_opposite_transparent(self):
        assert count_concat_units(q.opposite(q.concat(q.up(), q.down()))) == 2
