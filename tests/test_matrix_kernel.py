"""Byte-identity of the matrix DP kernel against the loop oracle.

The matrix kernel (`kernel="matrix"`, the default) must reproduce the
retained loop kernel exactly — same scores, same placements, same
lowest-split-index tie-breaking — on every unit mix, layout and
degenerate input.  Equality below is ``==`` on floats, not approx: the
two kernels are required to be *bit* identical, which is what lets the
loop kernel serve as the matrix kernel's oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import builder as q
from repro.engine.chains import compile_query
from repro.engine.dynamic import (
    DEFAULT_KERNEL,
    KERNELS,
    MATRIX_TILE,
    fuzzy_run_solver,
    solve_query,
)
from repro.engine.executor import ShapeSearchEngine
from repro.engine.scoring import temporary_udp
from repro.engine.units import INFEASIBLE, RUNS_MEMO_KEY, LineUnit, SlopeUnit
from repro.errors import ExecutionError

from tests.conftest import make_trendline

LOOP = fuzzy_run_solver("loop")
MATRIX = fuzzy_run_solver("matrix")


def _random_trendline(seed, low=8, high=80):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(low, high))
    return make_trendline(rng.normal(0, 1, n).cumsum(), key="rand{}".format(seed))


def assert_kernels_identical(trendline, compiled):
    # kernel= threads the choice into nested/AND sub-solves too, so the
    # oracle comparison covers the whole solve, not just top-level runs.
    loop = solve_query(trendline, compiled, kernel="loop")
    matrix = solve_query(trendline, compiled, kernel="matrix")
    assert matrix.score == loop.score
    assert matrix.chain_index == loop.chain_index
    loop_placed = [
        (p.start, p.end, p.score, p.weight, p.slope) for p in loop.solution.placements
    ]
    matrix_placed = [
        (p.start, p.end, p.score, p.weight, p.slope) for p in matrix.solution.placements
    ]
    assert matrix_placed == loop_placed


# -- query corpus -----------------------------------------------------------

FUZZY_QUERIES = [
    q.concat(q.up(), q.down()),
    q.concat(q.up(), q.down(), q.up()),
    q.concat(q.flat(), q.up(), q.slope(45)),
    q.concat(q.up(sharp=True), q.down(gradual=True)),
    q.up() >> (q.flat() | (q.down() >> q.up())),
    q.concat(q.any_pattern(), q.down(), q.any_pattern()),
    q.concat(q.up(), q.down(), q.up(), q.down(), q.up()),
]

HYBRID_QUERIES = [
    q.concat(q.up(x_start=0, x_end=8), q.down(), q.up()),
    q.concat(q.up(), q.down(x_start=20, x_end=40), q.up()),
    q.concat(q.up(), q.down(x_start=30)),
    q.concat(q.up(x_end=10), q.down()),
]

MIXED_QUERIES = [
    # LineUnit rides the vectorized fast path; sketch/nested/quantifier/
    # position exercise the batched fallback inside the matrix kernel.
    q.concat(q.segment(y_start=0.0, y_end=10.0), q.down()),
    q.concat(q.up(), q.segment(y_end=5.0), q.up()),
    q.concat(q.sketch([(0, 0), (1, 2), (2, 0)]), q.up()),
    q.concat(q.up(), q.nested(q.concat(q.down(), q.up()))),
    q.concat(q.repeated(q.up(), low=1), q.down()),
    q.concat(q.up(), q.position(index=0, comparison=">")),
]


class TestKernelEquivalence:
    @pytest.mark.parametrize("query_index", range(len(FUZZY_QUERIES)))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fuzzy_chains(self, query_index, seed):
        compiled = compile_query(FUZZY_QUERIES[query_index])
        assert_kernels_identical(_random_trendline(seed), compiled)

    @pytest.mark.parametrize("query_index", range(len(HYBRID_QUERIES)))
    @pytest.mark.parametrize("seed", [3, 4])
    def test_pinned_and_hybrid_layouts(self, query_index, seed):
        compiled = compile_query(HYBRID_QUERIES[query_index])
        assert_kernels_identical(_random_trendline(seed, low=45, high=70), compiled)

    @pytest.mark.parametrize("query_index", range(len(MIXED_QUERIES)))
    @pytest.mark.parametrize("seed", [5, 6])
    def test_mixed_unit_chains(self, query_index, seed):
        compiled = compile_query(MIXED_QUERIES[query_index])
        assert_kernels_identical(_random_trendline(seed), compiled)

    def test_udp_fallback_units(self):
        with temporary_udp("dip", lambda values, slope: float(values.min())):
            compiled = compile_query(q.concat(q.up(), q.udp("dip")))
            assert_kernels_identical(_random_trendline(7), compiled)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25)
    def test_random_walks_property(self, seed):
        rng = np.random.default_rng(seed)
        trendline = _random_trendline(seed, low=8, high=60)
        pool = FUZZY_QUERIES + HYBRID_QUERIES + MIXED_QUERIES[:2]
        compiled = compile_query(pool[int(rng.integers(0, len(pool)))])
        assert_kernels_identical(trendline, compiled)

    def test_spans_multiple_tiles(self):
        """A run longer than MATRIX_TILE exercises the tile wavefront."""
        rng = np.random.default_rng(11)
        n = 2 * MATRIX_TILE + 57
        trendline = make_trendline(rng.normal(0, 1, n).cumsum(), key="tiles")
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        assert_kernels_identical(trendline, compiled)


class TestSharedAtanTransform:
    """The tile-shared arctan/transform path vs the per-layer path.

    ``SHARE_ATAN`` only changes *where* the Table 5 transform is
    computed (once per tile vs once per layer, with down folded onto up
    as an exact negation); both settings must match each other and the
    loop oracle bit for bit.
    """

    QUERIES = [
        q.concat(q.up(), q.down(), q.up()),
        q.concat(q.up(), q.flat(), q.down(), q.up()),
        q.concat(q.slope(30), q.down(), q.slope(-30)),
        q.concat(q.up(), q.opposite(q.up()), q.down()),
        q.concat(q.segment(y_start=0.0, y_end=10.0), q.down(), q.up()),
    ]

    @pytest.mark.parametrize("query_index", range(5))
    @pytest.mark.parametrize("seed", [0, 1, 12])
    def test_share_flag_is_bit_invisible(self, monkeypatch, query_index, seed):
        from repro.engine import dynamic as dynamic_module

        trendline = _random_trendline(seed, low=30, high=90)
        compiled = compile_query(self.QUERIES[query_index])
        results = {}
        for flag in (False, True):
            monkeypatch.setattr(dynamic_module, "SHARE_ATAN", flag)
            results[flag] = solve_query(trendline, compiled, kernel="matrix")
        assert results[True].score == results[False].score
        assert [
            (p.start, p.end, p.score, p.slope)
            for p in results[True].solution.placements
        ] == [
            (p.start, p.end, p.score, p.slope)
            for p in results[False].solution.placements
        ]
        # And both agree with the loop oracle.
        assert_kernels_identical(trendline, compiled)

    def test_multi_tile_shared_transform(self, monkeypatch):
        from repro.engine import dynamic as dynamic_module

        rng = np.random.default_rng(21)
        n = 2 * MATRIX_TILE + 31
        trendline = make_trendline(rng.normal(0, 1, n).cumsum(), key="atan-tiles")
        compiled = compile_query(q.concat(q.up(), q.down(), q.flat(), q.up()))
        monkeypatch.setattr(dynamic_module, "SHARE_ATAN", True)
        shared = solve_query(trendline, compiled, kernel="matrix")
        monkeypatch.setattr(dynamic_module, "SHARE_ATAN", False)
        private = solve_query(trendline, compiled, kernel="matrix")
        assert shared.score == private.score
        assert [
            (p.start, p.end, p.score) for p in shared.solution.placements
        ] == [(p.start, p.end, p.score) for p in private.solution.placements]

    def test_tile_transform_memo_is_not_mutated(self):
        """Consumers must never write into a memoized transform."""
        rng = np.random.default_rng(3)
        trendline = make_trendline(rng.normal(0, 1, 64).cumsum(), key="memo")
        atans = np.arctan(
            trendline.prefix.slope_matrix(np.arange(0, 40), np.arange(20, 60))
        )
        unit = SlopeUnit("up")
        memo = {}
        base = unit.tile_transform(atans, memo)
        snapshot = base.copy()
        unit.score_matrix_from_values(
            trendline, np.arange(0, 40), np.arange(20, 60), base
        )
        down = SlopeUnit("down")
        down_values = down.tile_transform(atans, memo)
        np.testing.assert_array_equal(base, snapshot)
        np.testing.assert_array_equal(down_values, -snapshot)
        assert len(memo) == 1  # down folded onto up


class TestTieBreaking:
    def test_constant_series_lowest_split_wins(self):
        """All splits tie on a constant series; both kernels must pick the
        same (lowest) split index, not merely the same score."""
        trendline = make_trendline(np.zeros(40), key="const")
        compiled = compile_query(q.concat(q.flat(), q.flat(), q.flat()))
        assert_kernels_identical(trendline, compiled)

    def test_symmetric_vee_ties(self):
        y = np.concatenate([np.linspace(10, 0, 20), np.linspace(0, 10, 20)])
        compiled = compile_query(q.concat(q.any_pattern(), q.any_pattern()))
        assert_kernels_identical(make_trendline(y, key="vee"), compiled)


class TestDegenerateInputs:
    """The single-bin/empty-segment cases PR 2 pinned down."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_tiny_trendlines(self, n):
        trendline = make_trendline(np.arange(float(n)), key="tiny{}".format(n))
        for tree in (q.concat(q.up(), q.down()), q.concat(q.up(), q.down(), q.up())):
            assert_kernels_identical(trendline, compile_query(tree))

    def test_infeasible_run_matches(self):
        trendline = make_trendline(np.arange(4.0))
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        for solver in (LOOP, MATRIX):
            assert solve_query(trendline, compiled, run_solver=solver).score == INFEASIBLE

    def test_pin_consuming_whole_range(self):
        """The fuzzy run between the pin and the end is empty."""
        trendline = make_trendline(np.linspace(0, 10, 30), key="pinned-all")
        compiled = compile_query(q.concat(q.up(x_start=0, x_end=29), q.down()))
        assert_kernels_identical(trendline, compiled)

    def test_constant_with_single_point_bins(self):
        trendline = make_trendline(np.array([5.0, 5.0]), key="two-const")
        assert_kernels_identical(trendline, compile_query(q.concat(q.up(), q.down())))


class TestScoreMatrixApi:
    """score_matrix/score_pairs agree with the scalar score everywhere."""

    def _grid(self, trendline):
        starts = np.arange(0, trendline.n_bins - 2)
        ends = np.arange(2, trendline.n_bins + 1)
        return starts, ends

    @pytest.mark.parametrize(
        "unit",
        [
            SlopeUnit("up"),
            SlopeUnit("down", negated=True),
            SlopeUnit("flat"),
            SlopeUnit("slope", theta=30.0),
            LineUnit(q.location(y_start=0.0, y_end=8.0)),
            LineUnit(q.location()),
        ],
    )
    def test_matrix_equals_vectorized_rows_and_scalar_grid(self, unit, noisy_up_down_up):
        """The matrix must be *bitwise* equal to the vectorized row/column
        paths the loop kernel consumes (that is the kernel-identity
        contract), and match the scalar score to float precision (the
        scalar SlopeUnit path deliberately uses math.atan, which can
        differ from np.arctan by one ulp)."""
        starts, ends = self._grid(noisy_up_down_up)
        matrix = unit.score_matrix(noisy_up_down_up, starts, ends)
        for i, l in enumerate(starts):
            row = unit.score_ends(noisy_up_down_up, int(l), ends)
            assert list(matrix[i]) == list(row)
        for j, r in enumerate(ends):
            column = unit.score_starts(noisy_up_down_up, starts, int(r))
            assert list(matrix[:, j]) == list(column)
        for i, l in enumerate(starts[::7]):
            for j, r in enumerate(ends[::7]):
                if r - l < 2:
                    continue
                scalar = unit.score(noisy_up_down_up, int(l), int(r))
                assert matrix[7 * i, 7 * j] == pytest.approx(scalar, abs=1e-12)

    def test_pairs_equal_vectorized(self, noisy_up_down_up):
        unit = SlopeUnit("up")
        starts = np.array([0, 3, 10, 20])
        ends = np.array([5, 9, 30, 55])
        pairs = unit.score_pairs(noisy_up_down_up, starts, ends)
        for value, l, r in zip(pairs, starts, ends):
            assert value == unit.score_ends(noisy_up_down_up, int(l), np.array([r]))[0]
            assert value == pytest.approx(
                unit.score(noisy_up_down_up, int(l), int(r)), abs=1e-12
            )

    def test_fallback_matrix_matches_loop_columns(self, noisy_up_down_up):
        """Non-vectorized units: the batched fallback must equal the
        per-column score_starts path the loop kernel uses."""
        unit = compile_query(q.concat(q.sketch([(0, 0), (1, 1)]), q.up())).chains[0].units[0].unit
        starts = np.array([0, 2, 4])
        ends = np.array([10, 12])
        matrix = unit.score_matrix(noisy_up_down_up, starts, ends)
        for j, r in enumerate(ends):
            column = unit.score_starts(noisy_up_down_up, starts, int(r))
            assert list(matrix[:, j]) == list(column)


class TestEngineKernelOption:
    def _trendlines(self, count=12):
        rng = np.random.default_rng(42)
        return [
            make_trendline(rng.normal(0, 1, 40).cumsum(), key="k{}".format(i))
            for i in range(count)
        ]

    def _signature(self, matches):
        return [
            (m.key, m.score, [(p.start, p.end, p.score) for p in m.placements])
            for m in matches
        ]

    def test_default_kernel_is_matrix(self):
        assert DEFAULT_KERNEL == "matrix"
        engine = ShapeSearchEngine(algorithm="dp")
        assert engine.kernel == "matrix"
        engine.close()

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ExecutionError):
            ShapeSearchEngine(kernel="turbo")
        with pytest.raises(ValueError):
            fuzzy_run_solver("turbo")
        assert set(KERNELS) == {"matrix", "loop"}

    def test_rank_identical_across_kernels(self):
        trendlines = self._trendlines()
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        with ShapeSearchEngine(algorithm="dp", kernel="loop") as loop_engine:
            expected = self._signature(loop_engine.rank(trendlines, compiled, k=5))
        with ShapeSearchEngine(algorithm="dp", kernel="matrix") as matrix_engine:
            assert self._signature(matrix_engine.rank(trendlines, compiled, k=5)) == expected

    @pytest.mark.parametrize("workers,backend,shm", [
        (2, "thread", True),
        (3, "thread", True),
        (2, "process", True),
        (2, "process", False),
    ])
    def test_kernels_identical_any_worker_count_and_transport(self, workers, backend, shm):
        trendlines = self._trendlines()
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        with ShapeSearchEngine(algorithm="dp", kernel="loop") as oracle:
            expected = self._signature(oracle.rank(trendlines, compiled, k=5))
        with ShapeSearchEngine(
            algorithm="dp", kernel="matrix", workers=workers, backend=backend, shm=shm
        ) as engine:
            assert self._signature(engine.rank(trendlines, compiled, k=5)) == expected


class TestQuantifierRunsMemo:
    def test_memo_populated_and_scores_unchanged(self):
        rng = np.random.default_rng(9)
        trendline = make_trendline(
            np.sin(np.linspace(0, 6 * np.pi, 80)) + rng.normal(0, 0.1, 80), key="waves"
        )
        compiled = compile_query(q.concat(q.repeated(q.up(), low=2), q.down()))
        unit = compiled.chains[0].units[0].unit
        bare = unit.score(trendline, 0, 60, None)
        context = {}
        memoized = unit.score(trendline, 0, 60, context)
        assert memoized == bare
        assert RUNS_MEMO_KEY in context and len(context[RUNS_MEMO_KEY]) == 1
        # A repeat with the same context hits the memo (same object out).
        again = unit.score(trendline, 0, 60, context)
        assert again == bare
        assert len(context[RUNS_MEMO_KEY]) == 1

    def test_solve_query_threads_memo_through(self):
        trendline = make_trendline(
            np.sin(np.linspace(0, 4 * np.pi, 60)), key="memo-solve"
        )
        compiled = compile_query(q.concat(q.repeated(q.up(), low=1), q.down()))
        assert_kernels_identical(trendline, compiled)

    def test_memo_is_bounded(self, monkeypatch):
        """A mid-chain quantifier touches O(n²) ranges; the memo must not
        grow without bound — FIFO eviction keeps it capped while recent
        (re-scorable) ranges stay resident."""
        import repro.engine.units as units_module

        monkeypatch.setattr(units_module, "RUNS_MEMO_CAP", 8)
        trendline = make_trendline(
            np.sin(np.linspace(0, 4 * np.pi, 60)), key="memo-cap"
        )
        compiled = compile_query(q.concat(q.repeated(q.up(), low=1), q.down()))
        unit = compiled.chains[0].units[0].unit
        context = {}
        expected = {}
        for l in range(0, 20):
            expected[l] = unit.score(trendline, l, l + 30, None)
            assert unit.score(trendline, l, l + 30, context) == expected[l]
        memo = context[RUNS_MEMO_KEY]
        assert len(memo) <= 8
        # Evicted entries recompute correctly (values, not cache, decide).
        for l in range(0, 20):
            assert unit.score(trendline, l, l + 30, context) == expected[l]


class TestKernelThreading:
    def test_kernel_choice_reaches_nested_solves(self, monkeypatch):
        """kernel="loop" must drive nested sub-queries' fuzzy runs too,
        not just the top-level chains."""
        import repro.engine.dynamic as dynamic

        counts = {"matrix": 0, "loop": 0}
        real_matrix = dynamic._solve_fuzzy_run_matrix
        real_loop = dynamic._solve_fuzzy_run_loop

        def spy_matrix(*args):
            counts["matrix"] += 1
            return real_matrix(*args)

        def spy_loop(*args):
            counts["loop"] += 1
            return real_loop(*args)

        monkeypatch.setattr(dynamic, "_solve_fuzzy_run_matrix", spy_matrix)
        monkeypatch.setattr(dynamic, "_solve_fuzzy_run_loop", spy_loop)
        trendline = _random_trendline(13, low=40, high=41)
        compiled = compile_query(
            q.concat(q.up(), q.nested(q.concat(q.down(), q.up())))
        )
        solve_query(trendline, compiled, kernel="loop")
        assert counts["loop"] > 1, "nested sub-solves did not use the loop kernel"
        assert counts["matrix"] == 0
        counts["loop"] = counts["matrix"] = 0
        solve_query(trendline, compiled, kernel="matrix")
        assert counts["matrix"] > 1
        assert counts["loop"] == 0

    def test_default_without_kernel_is_matrix(self, monkeypatch):
        import repro.engine.dynamic as dynamic

        counts = {"matrix": 0}
        real_matrix = dynamic._solve_fuzzy_run_matrix

        def spy_matrix(*args):
            counts["matrix"] += 1
            return real_matrix(*args)

        monkeypatch.setattr(dynamic, "_solve_fuzzy_run_matrix", spy_matrix)
        trendline = _random_trendline(14)
        solve_query(trendline, compile_query(q.concat(q.up(), q.down())))
        assert counts["matrix"] == 1

    def test_pruning_stage1_honors_kernel(self, monkeypatch):
        import repro.engine.dynamic as dynamic
        from repro.engine.pruning import prune_and_rank

        counts = {"loop": 0, "matrix": 0}
        real_loop = dynamic._solve_fuzzy_run_loop
        real_matrix = dynamic._solve_fuzzy_run_matrix

        def spy_loop(*args):
            counts["loop"] += 1
            return real_loop(*args)

        def spy_matrix(*args):
            counts["matrix"] += 1
            return real_matrix(*args)

        monkeypatch.setattr(dynamic, "_solve_fuzzy_run_loop", spy_loop)
        monkeypatch.setattr(dynamic, "_solve_fuzzy_run_matrix", spy_matrix)
        trendlines = [_random_trendline(seed, low=30, high=50) for seed in range(6)]
        compiled = compile_query(q.concat(q.up(), q.down()))
        prune_and_rank(trendlines, compiled, k=3, kernel="loop")
        assert counts["loop"] > 0, "stage-1 sampling ignored kernel='loop'"
        assert counts["matrix"] == 0


class TestLinePrefixPickle:
    def test_cached_line_prefix_excluded_from_pickles(self):
        import pickle

        trendline = make_trendline(np.linspace(0, 5, 30), key="pkl")
        unit = LineUnit(q.location(y_start=0.0, y_end=5.0))
        before = unit.score(trendline, 0, 30)
        assert trendline._line_prefix is not None  # populated by the score
        clone = pickle.loads(pickle.dumps(trendline))
        assert clone._line_prefix is None  # rebuilt lazily worker-side
        assert unit.score(clone, 0, 30) == before
