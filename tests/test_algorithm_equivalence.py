"""Oracle-equivalence property tests for the segmentation algorithms.

The exhaustive enumerator is exact (it scores every layout, including
POSITION context), so on small inputs it is ground truth.  These tests
pin the contract of each fast algorithm against it on randomized small
trendlines:

* ``dp`` is provably optimal (Theorem 6.1) — it must match the oracle
  *exactly*;
* ``segment-tree`` and ``greedy`` are heuristics — they must never beat
  the oracle, and must land within a documented tolerance of it.

Tolerances are calibrated on seeded random walks of 10–16 points — the
hardest case for the heuristics, whose merge/local-search steps have
little structure to exploit.  Worst observed shortfalls were ~0.50
(segment-tree) and ~0.91 (greedy) on single inputs, with per-query mean
shortfalls of ~0.10 and ~0.16; the bounds below add head-room so the
tests are stable, and the aggregate-mean bounds keep them honest.
"""

import numpy as np
import pytest

from repro.algebra import builder as q
from repro.engine.chains import compile_query
from repro.engine.dynamic import solve_query
from repro.engine.exhaustive import exhaustive_solve_query
from repro.engine.greedy import greedy_run_solver
from repro.engine.segment_tree import segment_tree_run_solver
from repro.engine.trendline import build_trendline

#: Heuristics may trail the oracle by at most this much on one input...
SEGMENT_TREE_TOLERANCE = 0.75
GREEDY_TOLERANCE = 1.2
#: ...and by at most this much on average over the random corpus.
SEGMENT_TREE_MEAN_TOLERANCE = 0.2
GREEDY_MEAN_TOLERANCE = 0.3

QUERIES = {
    "simple": q.concat(q.up(), q.down()),
    "fuzzy": q.concat(q.up(), q.down(), q.up()),
    "fuzzy-or": q.or_(q.concat(q.up(), q.down()), q.concat(q.down(), q.up())),
    "location": q.concat(q.up(x_start=0, x_end=6), q.down()),
}


def _random_trendlines(seed: int, count: int = 15):
    """Seeded random-walk trendlines of 10–16 points."""
    rng = np.random.default_rng(seed)
    trendlines = []
    for index in range(count):
        n = int(rng.integers(10, 17))
        y = rng.normal(0, 1, n).cumsum()
        trendlines.append(build_trendline("rw{}".format(index), np.arange(n, dtype=float), y))
    return trendlines


@pytest.mark.parametrize("name", sorted(QUERIES))
class TestOracleEquivalence:
    def test_dp_matches_oracle_exactly(self, name):
        query = compile_query(QUERIES[name])
        for trendline in _random_trendlines(seed=101):
            oracle = exhaustive_solve_query(trendline, query)
            dp = solve_query(trendline, query)
            assert dp.score == pytest.approx(oracle.score, abs=1e-9), trendline.key

    def test_segment_tree_within_tolerance(self, name):
        query = compile_query(QUERIES[name])
        shortfalls = []
        for trendline in _random_trendlines(seed=202):
            oracle = exhaustive_solve_query(trendline, query)
            st = solve_query(trendline, query, run_solver=segment_tree_run_solver)
            assert st.score <= oracle.score + 1e-9, trendline.key
            assert st.score >= oracle.score - SEGMENT_TREE_TOLERANCE, trendline.key
            shortfalls.append(oracle.score - st.score)
        assert np.mean(shortfalls) <= SEGMENT_TREE_MEAN_TOLERANCE

    def test_greedy_within_tolerance(self, name):
        query = compile_query(QUERIES[name])
        shortfalls = []
        for trendline in _random_trendlines(seed=303):
            oracle = exhaustive_solve_query(trendline, query)
            greedy = solve_query(trendline, query, run_solver=greedy_run_solver)
            assert greedy.score <= oracle.score + 1e-9, trendline.key
            assert greedy.score >= oracle.score - GREEDY_TOLERANCE, trendline.key
            shortfalls.append(oracle.score - greedy.score)
        assert np.mean(shortfalls) <= GREEDY_MEAN_TOLERANCE


class TestStructuredShapes:
    """On clean planted shapes every algorithm should agree with the oracle."""

    def _planted(self):
        y = np.concatenate(
            [np.linspace(0, 8, 6), np.linspace(8, 1, 6), np.linspace(1, 9, 6)]
        )
        return build_trendline("planted", np.arange(len(y), dtype=float), y)

    @pytest.mark.parametrize("run_solver", [None, segment_tree_run_solver, greedy_run_solver])
    def test_planted_udu_near_oracle(self, run_solver):
        query = compile_query(q.concat(q.up(), q.down(), q.up()))
        trendline = self._planted()
        oracle = exhaustive_solve_query(trendline, query)
        solved = solve_query(trendline, query, run_solver=run_solver)
        assert solved.score == pytest.approx(oracle.score, abs=0.05)
        assert oracle.score > 0.8  # the shape is genuinely there
