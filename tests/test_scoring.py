"""Tests for the perceptual scoring functions (paper §5.2, Tables 5–6)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.primitives import Quantifier
from repro.engine import scoring
from repro.errors import UnknownPatternError

slopes = st.floats(min_value=-50, max_value=50, allow_nan=False)


class TestPatternScores:
    def test_up_anchor_values(self):
        assert scoring.up_score(0.0) == pytest.approx(0.0)
        assert scoring.up_score(1.0) == pytest.approx(0.5)  # 45 degrees
        assert scoring.up_score(1e9) == pytest.approx(1.0, abs=1e-6)
        assert scoring.up_score(-1e9) == pytest.approx(-1.0, abs=1e-6)

    def test_down_is_mirror_of_up(self):
        for slope in (-3.0, -0.5, 0.0, 0.5, 3.0):
            assert scoring.down_score(slope) == pytest.approx(-scoring.up_score(slope))

    def test_flat_anchor_values(self):
        assert scoring.flat_score(0.0) == pytest.approx(1.0)
        assert scoring.flat_score(1e9) == pytest.approx(-1.0, abs=1e-6)
        assert scoring.flat_score(-1e9) == pytest.approx(-1.0, abs=1e-6)

    def test_theta_peaks_at_target(self):
        assert scoring.theta_score(math.tan(math.radians(45)), 45) == pytest.approx(1.0)
        below = scoring.theta_score(math.tan(math.radians(30)), 45)
        above = scoring.theta_score(math.tan(math.radians(60)), 45)
        assert below < 1.0 and above < 1.0

    def test_theta_monotone_decrease_with_deviation(self):
        target = 30
        deviations = [0, 10, 25, 50, 80]
        values = [
            scoring.theta_score(math.tan(math.radians(target + d if target + d < 90 else 89)), target)
            for d in deviations
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    @given(slopes)
    def test_all_scores_bounded(self, slope):
        for kind, theta in [("up", None), ("down", None), ("flat", None), ("slope", 45)]:
            value = float(scoring.pattern_score(kind, slope, theta))
            assert -1.0 <= value <= 1.0

    @given(slopes)
    def test_up_monotone_in_slope(self, slope):
        assert scoring.up_score(slope + 0.5) > scoring.up_score(slope)

    def test_any_and_empty(self):
        assert float(scoring.pattern_score("any", 3.0)) == 1.0
        assert float(scoring.pattern_score("empty", 3.0)) == -1.0

    def test_unknown_kind_raises(self):
        with pytest.raises(UnknownPatternError):
            scoring.pattern_score("wiggle", 0.0)

    def test_diminishing_returns(self):
        """Equal slope increments matter less at steeper slopes (tan⁻¹ law)."""
        low_gain = scoring.up_score(1.0) - scoring.up_score(0.5)
        high_gain = scoring.up_score(5.5) - scoring.up_score(5.0)
        assert low_gain > high_gain


class TestSharpenedKinds:
    def test_sharp_up_targets_75(self):
        kind, theta = scoring.sharpened_kind("up", ">>")
        assert (kind, theta) == ("slope", 75.0)

    def test_gradual_down_targets_minus_30(self):
        kind, theta = scoring.sharpened_kind("down", "<")
        assert (kind, theta) == ("slope", -30.0)

    def test_non_directional_passthrough(self):
        assert scoring.sharpened_kind("flat", ">>") == ("flat", None)


class TestOperatorScores:
    def test_table6_definitions(self):
        values = [0.2, -0.4, 0.9]
        assert scoring.concat_scores(values) == pytest.approx(np.mean(values))
        assert scoring.and_scores(values) == pytest.approx(-0.4)
        assert scoring.or_scores(values) == pytest.approx(0.9)
        assert scoring.opposite_score(0.3) == pytest.approx(-0.3)

    @given(st.lists(st.floats(min_value=-1, max_value=1, allow_nan=False), min_size=1, max_size=6))
    def test_boundedness_property(self, values):
        """Property 5.1: operator outputs stay within child extremes."""
        low, high = min(values), max(values)
        for combine in (scoring.concat_scores, scoring.and_scores, scoring.or_scores):
            assert low - 1e-9 <= combine(values) <= high + 1e-9


class TestPositionScores:
    def test_equality_rewards_similar_slopes(self):
        assert scoring.position_score(1.0, 1.0, "=") == pytest.approx(1.0)
        assert scoring.position_score(5.0, -5.0, "=") < 0.5

    def test_greater_than(self):
        assert scoring.position_score(2.0, 1.0, ">") > 0
        assert scoring.position_score(0.5, 1.0, ">") < 0

    def test_factor(self):
        assert scoring.position_score(2.5, 1.0, ">", factor=2.0) > 0
        assert scoring.position_score(1.5, 1.0, ">", factor=2.0) < 0

    def test_sharp_margin(self):
        assert scoring.position_score(1.2, 1.0, ">") > 0
        assert scoring.position_score(1.2, 1.0, ">>") < 0
        assert scoring.position_score(2.5, 1.0, ">>") > 0

    def test_less_than_mirrors(self):
        assert scoring.position_score(0.5, 1.0, "<") > 0
        assert scoring.position_score(2.0, 1.0, "<") < 0


class TestSketchScore:
    def test_identical_series_scores_one(self):
        series = np.sin(np.linspace(0, 6, 50))
        assert scoring.sketch_score(series, series) == pytest.approx(1.0)

    def test_opposite_series_scores_low(self):
        series = np.linspace(0, 1, 50)
        assert scoring.sketch_score(series, -series) < 0

    def test_resamples_different_lengths(self):
        series = np.linspace(0, 1, 50)
        sketch = np.linspace(0, 1, 7)
        assert scoring.sketch_score(series, sketch) == pytest.approx(1.0, abs=0.05)

    def test_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            a, b = rng.normal(0, 1, 30), rng.normal(0, 1, 30)
            assert -1.0 <= scoring.sketch_score(a, b) <= 1.0


class TestDegenerateInput:
    """Empty / single-point series must yield defined values, not numpy
    errors from a degenerate interpolation grid (regression)."""

    def test_resample_empty_source_is_zeros(self):
        result = scoring.resample(np.array([]), 5)
        assert result.tolist() == [0.0] * 5

    def test_resample_single_point_broadcasts(self):
        result = scoring.resample(np.array([3.5]), 4)
        assert result.tolist() == [3.5] * 4

    def test_resample_to_zero_length(self):
        assert len(scoring.resample(np.array([1.0, 2.0]), 0)) == 0

    def test_resample_identity_when_lengths_match(self):
        values = np.array([1.0, 2.0, 3.0])
        assert scoring.resample(values, 3) is values

    def test_znormalize_empty(self):
        assert scoring.znormalize(np.array([])).tolist() == []

    def test_sketch_score_empty_sketch_defined(self):
        segment = np.array([1.0, 2.0, 3.0])
        assert scoring.sketch_score(segment, np.array([])) == -1.0

    def test_sketch_score_single_point_sketch_defined(self):
        segment = np.array([1.0, 2.0, 3.0])
        assert scoring.sketch_score(segment, np.array([7.0])) == -1.0

    def test_sketch_score_short_segment_defined(self):
        assert scoring.sketch_score(np.array([1.0]), np.array([1.0, 2.0])) == -1.0

    def test_sketch_score_degenerate_both_sides(self):
        assert scoring.sketch_score(np.array([]), np.array([])) == -1.0


class TestQuantifierThresholdOverride:
    """§5.2: the occurrence floor 'can be overridden by users'."""

    def _table(self):
        from repro.data.table import Table

        # Two rises split by a fall: quantifier occurrences exist but are
        # modest, so a high floor rejects them.
        values = np.concatenate(
            [np.linspace(0, 4, 10), np.linspace(4, 1, 10), np.linspace(1, 5, 10)]
        )
        return Table.from_arrays(
            z=np.array(["a"] * 30, dtype=object),
            x=np.arange(30, dtype=float),
            y=values,
        )

    def test_engine_threads_threshold_into_units(self):
        from repro.engine.chains import compile_query
        from repro.parser import parse

        compiled = compile_query(parse("[p=up, m={2,}]"), quantifier_threshold=0.9)
        assert compiled.chains[0].units[0].unit.positive_threshold == 0.9
        default = compile_query(parse("[p=up, m={2,}]"))
        assert default.chains[0].units[0].unit.positive_threshold is None

    def test_override_changes_scores_and_default_matches_constant(self):
        from repro.data.visual_params import VisualParams
        from repro.engine.executor import ShapeSearchEngine
        from repro.parser import parse

        table = self._table()
        params = VisualParams(z="z", x="x", y="y")
        node = parse("[p=up, m={2,}]")
        permissive = ShapeSearchEngine(quantifier_threshold=0.0).run(
            table, params, node, k=1
        )
        strict = ShapeSearchEngine(quantifier_threshold=0.99).run(
            table, params, node, k=1
        )
        assert permissive[0].score > strict[0].score
        assert strict[0].score == -1.0
        default = ShapeSearchEngine().run(table, params, node, k=1)
        explicit = ShapeSearchEngine(
            quantifier_threshold=scoring.QUANTIFIER_POSITIVE_THRESHOLD
        ).run(table, params, node, k=1)
        assert default[0].score == explicit[0].score

    def test_plan_cache_keys_on_threshold(self):
        from repro.data.visual_params import VisualParams
        from repro.engine.cache import EngineCache
        from repro.engine.executor import ShapeSearchEngine
        from repro.parser import parse

        table = self._table()
        params = VisualParams(z="z", x="x", y="y")
        node = parse("[p=up, m={2,}]")
        cache = EngineCache()
        lenient = ShapeSearchEngine(cache=cache, quantifier_threshold=0.0)
        strict = ShapeSearchEngine(cache=cache, quantifier_threshold=0.99)
        first = lenient.run(table, params, node, k=1)
        second = strict.run(table, params, node, k=1)
        # Shared cache, different thresholds: no plan sharing, no stale score.
        assert first[0].score != second[0].score
        assert len(cache.plans) == 2


class TestDirectionalRuns:
    def test_clean_two_runs(self):
        values = np.concatenate([np.linspace(0, 5, 10), np.linspace(5, 0, 10)])
        runs = scoring.directional_runs(values)
        assert len(runs) == 2
        assert runs[0][0] == 0 and runs[-1][1] == len(values)

    def test_short_wiggles_are_merged(self):
        values = np.linspace(0, 10, 40)
        values[20] -= 0.5  # a one-sample dip
        runs = scoring.directional_runs(values, min_points=4)
        assert len(runs) == 1

    def test_covers_whole_series(self):
        rng = np.random.default_rng(5)
        values = rng.normal(0, 1, 60)
        runs = scoring.directional_runs(values)
        assert runs[0][0] == 0
        assert runs[-1][1] == 60
        # Consecutive runs share exactly their junction point.
        for (a, b), (c, d) in zip(runs, runs[1:]):
            assert c == b - 1


class TestQuantifierScore:
    def test_at_least_satisfied(self):
        quantifier = Quantifier(low=2)
        score = scoring.quantifier_score(quantifier, [0.9, 0.7, -0.5])
        assert score == pytest.approx((0.9 + 0.7) / 2)

    def test_at_least_violated(self):
        assert scoring.quantifier_score(Quantifier(low=3), [0.9, 0.7]) == -1.0

    def test_at_most_violated(self):
        assert scoring.quantifier_score(Quantifier(high=1), [0.9, 0.7]) == -1.0

    def test_at_most_trivially_satisfied(self):
        assert scoring.quantifier_score(Quantifier(high=2), []) == 1.0

    def test_at_most_with_occurrences(self):
        score = scoring.quantifier_score(Quantifier(high=2), [0.6, 0.4])
        assert score == pytest.approx(0.5)

    def test_exactly(self):
        quantifier = Quantifier(low=2, high=2)
        assert scoring.quantifier_score(quantifier, [0.8, 0.6]) == pytest.approx(0.7)
        assert scoring.quantifier_score(quantifier, [0.8]) == -1.0
        assert scoring.quantifier_score(quantifier, [0.8, 0.6, 0.5]) == -1.0


class TestUdpRegistry:
    def test_register_and_get(self):
        with scoring.temporary_udp("spike", lambda values, slope: 0.5):
            assert scoring.get_udp("spike")(None, 0) == 0.5
        with pytest.raises(UnknownPatternError):
            scoring.get_udp("spike")

    def test_unregister_ignores_missing(self):
        scoring.unregister_udp("never-registered")
