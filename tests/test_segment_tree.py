"""Tests for the SegmentTree algorithm (paper §6.2, Theorem 6.3)."""

import numpy as np
import pytest

from repro.algebra import builder as q
from repro.engine.chains import compile_query
from repro.engine.dynamic import solve_query
from repro.engine.segment_tree import (
    IncrementalSegmentTree,
    leaf_ranges,
    segment_tree_run_solver,
)

from tests.conftest import make_trendline


class TestLeafRanges:
    def test_partition_even(self):
        ranges = leaf_ranges(0, 10)
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c
        assert all(2 <= b - a <= 3 for a, b in ranges)

    def test_partition_odd(self):
        ranges = leaf_ranges(0, 11)
        assert ranges[-1][1] == 11
        assert all(2 <= b - a <= 3 for a, b in ranges)

    def test_offset_range(self):
        ranges = leaf_ranges(7, 15)
        assert ranges[0][0] == 7 and ranges[-1][1] == 15


class TestSegmentTreeSolver:
    def test_exact_on_clean_shape(self, up_down_up):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        dp = solve_query(up_down_up, compiled)
        st = solve_query(up_down_up, compiled, run_solver=segment_tree_run_solver)
        assert st.score == pytest.approx(dp.score, abs=0.02)

    def test_stays_at_or_below_dp(self):
        """DP is optimal over width-floor-compliant placements.  The
        SegmentTree can only exceed it through its documented root
        fallback — when no floor-compliant root entry exists, the best
        entry with an undersized *boundary* placement is kept — so any
        exceedance must coincide with such a placement."""
        from repro.engine.units import run_min_length

        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        for seed in range(8):
            rng = np.random.default_rng(seed)
            trendline = make_trendline(rng.normal(0, 1, 48).cumsum(), key=seed)
            dp = solve_query(trendline, compiled)
            st = solve_query(trendline, compiled, run_solver=segment_tree_run_solver)
            if st.score > dp.score + 1e-9:
                floor = run_min_length(0, trendline.n_bins, 3)
                placements = st.solution.placements
                assert (
                    placements[0].end - placements[0].start < floor
                    or placements[-1].end - placements[-1].start < floor
                )

    def test_accuracy_close_to_dp_on_shaped_data(self, noisy_up_down_up):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        dp = solve_query(noisy_up_down_up, compiled)
        st = solve_query(noisy_up_down_up, compiled, run_solver=segment_tree_run_solver)
        assert st.score >= 0.85 * dp.score

    def test_single_unit_chain(self, rising_line):
        compiled = compile_query(q.up())
        st = solve_query(rising_line, compiled, run_solver=segment_tree_run_solver)
        dp = solve_query(rising_line, compiled)
        assert st.score == pytest.approx(dp.score)

    def test_placements_partition_range(self, noisy_up_down_up):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        st = solve_query(noisy_up_down_up, compiled, run_solver=segment_tree_run_solver)
        placements = st.solution.placements
        assert placements[0].start == 0
        assert placements[-1].end == noisy_up_down_up.n_bins
        for left, right in zip(placements, placements[1:]):
            assert left.end == right.start

    def test_infeasible_when_too_short(self):
        trendline = make_trendline(np.arange(4.0))
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        st = solve_query(trendline, compiled, run_solver=segment_tree_run_solver)
        assert st.score == -1.0

    def test_or_query(self, up_down_up):
        compiled = compile_query(q.up() >> (q.down() | (q.down() >> q.up())))
        st = solve_query(up_down_up, compiled, run_solver=segment_tree_run_solver)
        assert st.chain_index == 1
        assert st.score > 0.8

    def test_four_segments(self):
        y = np.concatenate([
            np.linspace(0, 8, 15), np.linspace(8, 1, 15),
            np.linspace(1, 9, 15), np.linspace(9, 0, 15),
        ])
        trendline = make_trendline(y, key="zigzag")
        compiled = compile_query(q.concat(q.up(), q.down(), q.up(), q.down()))
        dp = solve_query(trendline, compiled)
        st = solve_query(trendline, compiled, run_solver=segment_tree_run_solver)
        assert st.score >= 0.9 * dp.score
        assert st.score > 0.8


class TestIncrementalTree:
    def test_stepwise_equals_run(self, noisy_up_down_up):
        compiled = compile_query(q.concat(q.up(), q.down(), q.up()))
        units = list(compiled.chains[0].units)
        one_shot = IncrementalSegmentTree(noisy_up_down_up, units, 0, noisy_up_down_up.n_bins)
        entry_a = one_shot.run()
        stepped = IncrementalSegmentTree(noisy_up_down_up, units, 0, noisy_up_down_up.n_bins)
        while not stepped.done:
            stepped.step()
        entry_b = stepped.tables[0].get((0, 2))
        assert entry_a[0] == pytest.approx(entry_b[0])

    def test_ranges_shrink_per_step(self, noisy_up_down_up):
        compiled = compile_query(q.concat(q.up(), q.down()))
        units = list(compiled.chains[0].units)
        tree = IncrementalSegmentTree(noisy_up_down_up, units, 0, noisy_up_down_up.n_bins)
        previous = len(tree.ranges)
        while not tree.done:
            tree.step()
            assert len(tree.ranges) <= previous
            previous = len(tree.ranges)
        assert tree.ranges == [(0, noisy_up_down_up.n_bins)]

    def test_every_node_keeps_single_unit_entries(self, noisy_up_down_up):
        compiled = compile_query(q.concat(q.up(), q.down()))
        units = list(compiled.chains[0].units)
        tree = IncrementalSegmentTree(noisy_up_down_up, units, 0, noisy_up_down_up.n_bins)
        tree.step()
        for table in tree.tables:
            assert (0, 0) in table
            assert (1, 1) in table
