"""Unit tests for the result-caching subsystem."""

import numpy as np
import pytest

from repro.algebra import builder as q
from repro.api import parse_query
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.cache import (
    EngineCache,
    LRUCache,
    canonical_query_text,
    coerce_cache,
    plan_fingerprint,
    table_fingerprint,
    trendline_cache_key,
)
from repro.engine.executor import ShapeSearchEngine
from repro.engine.pushdown import PushdownPlan


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", "fallback") == "fallback"

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # promote "a"; "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache

    def test_put_overwrites_and_promotes(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite promotes
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_stats_accounting(self):
        cache = LRUCache(capacity=1)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts "a"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.evictions == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_defined_when_unused(self):
        assert LRUCache().stats.hit_rate == 0.0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_evict_listener_sees_evicted_values(self):
        dropped = []
        cache = LRUCache(capacity=2)
        cache.add_evict_listener(dropped.append)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert dropped == [1]
        cache.put("d", 4)  # evicts "b"
        assert dropped == [1, 2]

    def test_evict_listener_not_called_on_overwrite(self):
        dropped = []
        cache = LRUCache(capacity=2)
        cache.add_evict_listener(dropped.append)
        cache.put("a", 1)
        cache.put("a", 10)
        assert dropped == []

    def test_evict_listeners_deduplicated(self):
        dropped = []
        cache = LRUCache(capacity=1)
        cache.add_evict_listener(dropped.append)
        cache.add_evict_listener(dropped.append)
        cache.put("a", 1)
        cache.put("b", 2)
        assert dropped == [1]

    def test_clear(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0


class TestTableFingerprint:
    def _table(self, values):
        return Table.from_arrays(
            z=np.array(["a", "a", "b", "b"], dtype=object),
            x=np.array([0.0, 1.0, 0.0, 1.0]),
            y=np.asarray(values, dtype=float),
        )

    def test_identical_content_same_fingerprint(self):
        assert table_fingerprint(self._table([1, 2, 3, 4])) == table_fingerprint(
            self._table([1, 2, 3, 4])
        )

    def test_changed_value_changes_fingerprint(self):
        assert table_fingerprint(self._table([1, 2, 3, 4])) != table_fingerprint(
            self._table([1, 2, 3, 5])
        )

    def test_renamed_column_changes_fingerprint(self):
        base = self._table([1, 2, 3, 4])
        renamed = Table.from_arrays(
            z=base.column("z"), x=base.column("x"), y2=base.column("y")
        )
        assert table_fingerprint(base) != table_fingerprint(renamed)

    def test_fingerprint_memoized_on_instance(self):
        table = self._table([1, 2, 3, 4])
        first = table_fingerprint(table)
        assert table._fingerprint == first
        assert table_fingerprint(table) is first

    def test_columns_read_only_so_memo_cannot_go_stale(self):
        table = self._table([1, 2, 3, 4])
        table_fingerprint(table)
        with pytest.raises(ValueError):
            table.column("y")[0] = 99.0

    def test_caller_buffer_mutation_cannot_reach_table(self):
        source = np.array([1.0, 2.0, 3.0, 4.0])
        table = Table.from_arrays(
            z=np.array(["a", "a", "b", "b"], dtype=object),
            x=np.array([0.0, 1.0, 0.0, 1.0]),
            y=source,
        )
        fingerprint = table_fingerprint(table)
        source[:] = 0.0  # the caller's own array stays writable...
        # ...but the table copied it, so contents and fingerprint hold.
        assert float(table.column("y")[0]) == 1.0
        assert table_fingerprint(table) == fingerprint


class TestKeys:
    def test_trendline_key_varies_with_params(self):
        table = Table.from_arrays(
            z=np.array(["a", "a"], dtype=object), x=np.array([0.0, 1.0]), y=np.array([1.0, 2.0])
        )
        base = VisualParams(z="z", x="x", y="y")
        binned = VisualParams(z="z", x="x", y="y", bin_width=2.0)
        assert trendline_cache_key(table, base, True) != trendline_cache_key(
            table, binned, True
        )
        assert trendline_cache_key(table, base, True) != trendline_cache_key(
            table, base, False
        )

    def test_plan_fingerprint_trivial_plans_share_none(self):
        assert plan_fingerprint(None) is None
        assert plan_fingerprint(PushdownPlan(has_eager_checks=True)) is None

    def test_plan_fingerprint_captures_generation_effects(self):
        pinned = PushdownPlan(required_spans=[(0.0, 10.0)], keep_span=(0.0, 10.0))
        other = PushdownPlan(required_spans=[(0.0, 20.0)], keep_span=(0.0, 20.0))
        assert plan_fingerprint(pinned) is not None
        assert plan_fingerprint(pinned) != plan_fingerprint(other)

    def test_canonical_text_unifies_front_ends(self):
        built = canonical_query_text(q.concat(q.up(), q.down()))
        parsed = canonical_query_text(parse_query("[p=up][p=down]"))
        assert built == parsed


class TestCoerce:
    def test_none_and_false_disable(self):
        assert coerce_cache(None) is None
        assert coerce_cache(False) is None

    def test_true_builds_fresh_cache(self):
        cache = coerce_cache(True)
        assert isinstance(cache, EngineCache)
        assert coerce_cache(True) is not cache

    def test_instance_passes_through(self):
        cache = EngineCache.with_capacity(trendlines=2, plans=4)
        assert coerce_cache(cache) is cache
        assert cache.trendlines.capacity == 2
        assert cache.plans.capacity == 4

    def test_invalid_rejected(self):
        with pytest.raises(TypeError):
            coerce_cache("big")


class TestEngineIntegration:
    def _table(self, seed=0):
        rng = np.random.default_rng(seed)
        zs, xs, ys = [], [], []
        for key in ("a", "b", "c"):
            series = rng.normal(0, 1, 25).cumsum()
            for index, value in enumerate(series):
                zs.append(key)
                xs.append(float(index))
                ys.append(float(value))
        return Table.from_arrays(z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys))

    def test_repeat_query_hits_both_caches(self):
        engine = ShapeSearchEngine(cache=True)
        table = self._table()
        params = VisualParams(z="z", x="x", y="y")
        query = q.concat(q.up(), q.down())
        first, stats_first = engine.execute_with_stats(table, params, query, k=2)
        second, stats_second = engine.execute_with_stats(table, params, query, k=2)
        assert not stats_first.trendline_cache_hit and not stats_first.plan_cache_hit
        assert stats_second.trendline_cache_hit and stats_second.plan_cache_hit
        assert [(m.key, m.score) for m in first] == [(m.key, m.score) for m in second]

    def test_cached_results_identical_to_uncached(self):
        table = self._table()
        params = VisualParams(z="z", x="x", y="y")
        query = q.concat(q.up(), q.down())
        plain = ShapeSearchEngine().run(table, params, query, k=3)
        cached_engine = ShapeSearchEngine(cache=True)
        cached_engine.run(table, params, query, k=3)  # warm
        warm = cached_engine.run(table, params, query, k=3)
        assert [(m.key, m.score) for m in plain] == [(m.key, m.score) for m in warm]

    def test_data_change_misses_cache(self):
        engine = ShapeSearchEngine(cache=True)
        params = VisualParams(z="z", x="x", y="y")
        query = q.concat(q.up(), q.down())
        engine.run(table=self._table(seed=0), params=params, query=query, k=2)
        _, stats = engine.execute_with_stats(
            table=self._table(seed=1), params=params, query=query, k=2
        )
        assert not stats.trendline_cache_hit
        assert stats.plan_cache_hit  # the plan is data-independent

    def test_shared_cache_across_engines(self):
        shared = EngineCache()
        table = self._table()
        params = VisualParams(z="z", x="x", y="y")
        query = q.concat(q.up(), q.down())
        ShapeSearchEngine(cache=shared).run(table, params, query, k=2)
        _, stats = ShapeSearchEngine(cache=shared).execute_with_stats(
            table, params, query, k=2
        )
        assert stats.trendline_cache_hit and stats.plan_cache_hit

    def test_disabled_cache_never_hits(self):
        engine = ShapeSearchEngine()
        table = self._table()
        params = VisualParams(z="z", x="x", y="y")
        query = q.concat(q.up(), q.down())
        engine.run(table, params, query, k=2)
        _, stats = engine.execute_with_stats(table, params, query, k=2)
        assert engine.cache is None
        assert not stats.trendline_cache_hit and not stats.plan_cache_hit


class TestBytesBudget:
    """LRUCache with a byte budget: cost-tracked entries and eviction."""

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=2, max_bytes=0)
        with pytest.raises(ValueError):
            LRUCache(capacity=2, max_bytes=-1)

    def test_cost_is_tracked_and_released(self):
        cache = LRUCache(capacity=8, max_bytes=100)
        cache.put("a", "x", cost=40)
        cache.put("b", "y", cost=40)
        assert cache.stats.bytes == 80
        cache.put("c", "z", cost=40)  # evicts "a", the LRU entry
        assert cache.stats.bytes == 80
        assert cache.get("a") is None
        assert cache.get("b") == "y"
        assert cache.get("c") == "z"

    def test_oversized_entry_is_rejected_outright(self):
        cache = LRUCache(capacity=8, max_bytes=100)
        cache.put("small", "x", cost=10)
        cache.put("huge", "y", cost=101)  # can never fit: dropped, no eviction
        assert cache.get("huge") is None
        assert cache.get("small") == "x"
        assert cache.stats.bytes == 10

    def test_overwrite_adjusts_accounting(self):
        cache = LRUCache(capacity=8, max_bytes=100)
        cache.put("k", "v1", cost=60)
        cache.put("k", "v2", cost=20)
        assert cache.stats.bytes == 20
        assert cache.get("k") == "v2"

    def test_recency_decides_the_victim(self):
        cache = LRUCache(capacity=8, max_bytes=90)
        cache.put("a", 1, cost=30)
        cache.put("b", 2, cost=30)
        cache.put("c", 3, cost=30)
        assert cache.get("a") == 1  # promote "a"; "b" is now the LRU
        cache.put("d", 4, cost=30)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3 and cache.get("d") == 4

    def test_clear_resets_bytes(self):
        cache = LRUCache(capacity=8, max_bytes=100)
        cache.put("a", "x", cost=75)
        cache.clear()
        assert cache.stats.bytes == 0
        cache.put("b", "y", cost=100)  # the full budget is available again
        assert cache.get("b") == "y"
