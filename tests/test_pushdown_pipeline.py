"""Tests for push-down optimizations and the EXTRACT/GROUP pipeline (§5.3–5.4)."""

import numpy as np
import pytest

from repro.algebra import builder as q
from repro.data.filters import Filter
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.chains import compile_query
from repro.engine.pipeline import extract, generate_trendlines
from repro.engine.pushdown import eager_discard, has_required_data, plan_pushdown

from tests.conftest import make_trendline


def _table():
    """Three groups: a rising, a falling, and a short-domain one."""
    zs, xs, ys = [], [], []
    for key, values in [
        ("rise", np.linspace(0, 10, 30)),
        ("fall", np.linspace(10, 0, 30)),
    ]:
        for index, value in enumerate(values):
            zs.append(key)
            xs.append(float(index))
            ys.append(float(value))
    for index in range(5):  # "short" group only spans x in [0, 5)
        zs.append("short")
        xs.append(float(index))
        ys.append(float(index))
    return Table.from_arrays(z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys))


PARAMS = VisualParams(z="z", x="x", y="y")


class TestPlanPushdown:
    def test_fuzzy_query_produces_empty_plan(self):
        plan = plan_pushdown(compile_query(q.concat(q.up(), q.down())))
        assert plan.required_spans == []
        assert plan.keep_span is None
        assert not plan.has_eager_checks

    def test_pinned_spans_collected(self):
        tree = q.concat(q.up(x_start=50, x_end=100), q.down(), q.up())
        plan = plan_pushdown(compile_query(tree))
        assert plan.required_spans == [(50, 100)]
        assert plan.has_eager_checks
        assert plan.keep_span is None  # not fully pinned

    def test_fully_pinned_keep_span(self):
        tree = q.concat(
            q.up(x_start=10, x_end=20), q.down(x_start=20, x_end=28)
        )
        plan = plan_pushdown(compile_query(tree))
        assert plan.keep_span == (10, 28)


class TestHasRequiredData:
    def test_accepts_overlap(self):
        assert has_required_data(np.arange(30.0), [(10, 20)])

    def test_rejects_gap(self):
        assert not has_required_data(np.arange(5.0), [(10, 20)])

    def test_multiple_spans(self):
        assert not has_required_data(np.arange(15.0), [(0, 5), (20, 25)])


class TestEagerDiscard:
    def test_discards_wrong_direction(self):
        tl = make_trendline(np.linspace(10, 0, 30), key="fall")
        compiled = compile_query(q.concat(q.up(x_start=0, x_end=15), q.down()))
        assert eager_discard(tl, compiled)

    def test_keeps_right_direction(self):
        tl = make_trendline(np.linspace(0, 10, 30), key="rise")
        compiled = compile_query(q.concat(q.up(x_start=0, x_end=15), q.down()))
        assert not eager_discard(tl, compiled)

    def test_fuzzy_queries_never_discarded(self):
        tl = make_trendline(np.linspace(10, 0, 30), key="fall")
        compiled = compile_query(q.concat(q.up(), q.down()))
        assert not eager_discard(tl, compiled)

    def test_one_viable_or_chain_keeps_viz(self):
        tl = make_trendline(np.linspace(10, 0, 30), key="fall")
        tree = q.or_(q.up(x_start=0, x_end=15), q.down(x_start=0, x_end=15))
        assert not eager_discard(tl, compile_query(tree))


class TestExtract:
    def test_groups_sorted_by_x(self):
        streams = dict((key, (x, y)) for key, x, y in extract(_table(), PARAMS))
        assert set(streams) == {"rise", "fall", "short"}
        x, y = streams["rise"]
        assert list(x) == sorted(x)

    def test_filters_applied(self):
        params = VisualParams(z="z", x="x", y="y", filters=(Filter("z", "!=", "short"),))
        keys = [key for key, _, _ in extract(_table(), params)]
        assert keys == ["rise", "fall"]

    def test_string_filters_parsed(self):
        params = VisualParams(z="z", x="x", y="y", filters=("y >= 5",))
        streams = dict((key, (x, y)) for key, x, y in extract(_table(), params))
        assert all((y >= 5).all() for _, y in streams.values())

    def test_duplicate_x_aggregated(self):
        table = Table.from_arrays(
            z=np.array(["a"] * 6, dtype=object),
            x=np.array([0.0, 0.0, 1.0, 1.0, 2.0, 2.0]),
            y=np.array([1.0, 3.0, 4.0, 6.0, 8.0, 10.0]),
        )
        key, x, y = next(extract(table, PARAMS))
        assert list(x) == [0, 1, 2]
        assert list(y) == [2.0, 5.0, 9.0]

    def test_aggregate_choices(self):
        table = Table.from_arrays(
            z=np.array(["a"] * 4, dtype=object),
            x=np.array([0.0, 0.0, 1.0, 1.0]),
            y=np.array([1.0, 3.0, 4.0, 6.0]),
        )
        for aggregate, expected in [("sum", [4.0, 10.0]), ("max", [3.0, 6.0]), ("min", [1.0, 4.0])]:
            params = VisualParams(z="z", x="x", y="y", aggregate=aggregate)
            _, _, y = next(extract(table, params))
            assert list(y) == expected

    def test_pushdown_a_skips_groups(self):
        tree = q.concat(q.up(x_start=10, x_end=20), q.down())
        plan = plan_pushdown(compile_query(tree))
        keys = [key for key, _, _ in extract(_table(), PARAMS, plan)]
        assert "short" not in keys

    def test_unknown_column_raises(self):
        from repro.errors import DataError

        with pytest.raises(DataError):
            list(extract(_table(), VisualParams(z="nope", x="x", y="y")))


class TestGroup:
    def test_generates_trendlines(self):
        trendlines = generate_trendlines(_table(), PARAMS)
        assert {tl.key for tl in trendlines} == {"rise", "fall", "short"}

    def test_keep_span_restricts_bins(self):
        tree = q.concat(q.up(x_start=5, x_end=15), q.down(x_start=15, x_end=25))
        plan = plan_pushdown(compile_query(tree))
        trendlines = [
            tl for tl in generate_trendlines(_table(), PARAMS, plan=plan) if tl.key == "rise"
        ]
        assert trendlines[0].offset == 5
        assert trendlines[0].n_bins < 30
        assert len(trendlines[0].x) == 30  # raw kept for plotting

    def test_normalize_flag(self):
        trendlines = generate_trendlines(_table(), PARAMS, normalize_y=False)
        rise = next(tl for tl in trendlines if tl.key == "rise")
        assert rise.y_std == 1.0 and rise.y_mean == 0.0
