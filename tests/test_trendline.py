"""Tests for the Trendline model and the GROUP-side transforms."""

import numpy as np
import pytest

from repro.engine.trendline import build_trendline
from repro.errors import DataError

from tests.conftest import make_trendline


class TestBuild:
    def test_basic_shape(self):
        tl = make_trendline(np.linspace(0, 9, 10))
        assert tl.n_bins == 10
        assert len(tl.bin_x) == 10
        assert tl.prefix.bins == 10

    def test_rejects_short_series(self):
        with pytest.raises(DataError):
            build_trendline("k", [0.0], [1.0])

    def test_rejects_unsorted_x(self):
        with pytest.raises(DataError):
            build_trendline("k", [0.0, 2.0, 1.0], [1.0, 2.0, 3.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DataError):
            build_trendline("k", [0.0, 1.0], [1.0])

    def test_rejects_single_x_value(self):
        with pytest.raises(DataError):
            build_trendline("k", [1.0, 1.0], [1.0, 2.0])

    def test_z_score_normalization(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        tl = make_trendline(values)
        assert tl.norm_bin_y.mean() == pytest.approx(0.0, abs=1e-12)
        assert tl.norm_bin_y.std() == pytest.approx(1.0, abs=1e-12)

    def test_normalization_disabled(self):
        tl = build_trendline("k", np.arange(4.0), np.array([1.0, 2.0, 3.0, 4.0]), normalize_y=False)
        assert tl.y_mean == 0.0 and tl.y_std == 1.0
        assert np.allclose(tl.norm_bin_y, [1, 2, 3, 4])

    def test_constant_series_does_not_divide_by_zero(self):
        tl = make_trendline(np.full(10, 3.0))
        assert np.allclose(tl.norm_bin_y, 0.0)

    def test_full_trendline_slope_is_scale_free(self):
        """x→[0,1], y z-scored: doubling both scales leaves slopes alone."""
        base = build_trendline("a", np.arange(20.0), np.linspace(0, 5, 20))
        scaled = build_trendline("b", np.arange(20.0) * 7, np.linspace(0, 5, 20) * 100)
        assert base.prefix.slope(0, 20) == pytest.approx(scaled.prefix.slope(0, 20))


class TestBinning:
    def test_bin_width_groups_points(self):
        x = np.arange(12, dtype=float)
        y = np.arange(12, dtype=float)
        tl = build_trendline("k", x, y, bin_width=3.0)
        assert tl.n_bins == 4
        assert tl.bin_y[0] == pytest.approx(1.0)  # mean of 0,1,2

    def test_binned_stats_preserve_slope(self):
        rng = np.random.default_rng(0)
        x = np.arange(100, dtype=float)
        y = 2.0 * x + rng.normal(0, 1, 100)
        fine = build_trendline("f", x, y)
        coarse = build_trendline("c", x, y, bin_width=5.0)
        assert fine.prefix.slope(0, 100) == pytest.approx(
            coarse.prefix.slope(0, coarse.n_bins), rel=1e-9
        )


class TestXToBin:
    def test_exact_hits(self):
        tl = make_trendline(np.arange(10.0))
        assert tl.x_to_bin(0.0) == 0
        assert tl.x_to_bin(7.0) == 7
        assert tl.x_to_bin(9.0) == 9

    def test_nearest_neighbour(self):
        tl = make_trendline(np.arange(10.0))
        assert tl.x_to_bin(3.4) == 3
        assert tl.x_to_bin(3.6) == 4

    def test_clamping(self):
        tl = make_trendline(np.arange(10.0))
        assert tl.x_to_bin(-5.0) == 0
        assert tl.x_to_bin(50.0) == 9
        with pytest.raises(DataError):
            tl.x_to_bin(50.0, clamp=False)


class TestKeepRange:
    def test_restricts_statistics(self):
        tl = build_trendline("k", np.arange(20.0), np.arange(20.0), keep_range=(5, 15))
        assert tl.offset == 5
        assert tl.n_bins == 10
        assert len(tl.bin_x) == 10
        assert tl.bin_x[0] == 5.0

    def test_raw_values_kept_in_full(self):
        tl = build_trendline("k", np.arange(20.0), np.arange(20.0), keep_range=(5, 15))
        assert len(tl.x) == 20

    def test_too_narrow_range_rejected(self):
        with pytest.raises(DataError):
            build_trendline("k", np.arange(20.0), np.arange(20.0), keep_range=(5, 6))


class TestSegmentAccess:
    def test_segment_values_are_normalized(self):
        tl = make_trendline(np.arange(10.0))
        values = tl.segment_values(2, 6)
        assert len(values) == 4
        assert np.allclose(values, tl.norm_bin_y[2:6])

    def test_segment_raw(self):
        tl = make_trendline(np.arange(10.0) * 2)
        xs, ys = tl.segment_raw(1, 4)
        assert list(ys) == [2.0, 4.0, 6.0]

    def test_normalize_y_value_round_trip(self):
        tl = make_trendline(np.array([2.0, 4.0, 6.0, 8.0]))
        normalized = tl.normalize_y_value(6.0)
        assert normalized == pytest.approx((6.0 - tl.y_mean) / tl.y_std)
