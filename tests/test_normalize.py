"""Tests for OPPOSITE push-down and operator flattening (DESIGN.md §2.5)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.algebra import builder as q
from repro.algebra.nodes import And, Concat, Opposite, Or, ShapeSegment
from repro.algebra.normalize import is_normalized, normalize


def leaf_strategy():
    return st.sampled_from(["up", "down", "flat"]).map(
        lambda kind: {"up": q.up, "down": q.down, "flat": q.flat}[kind]()
    )


def tree_strategy():
    return st.recursive(
        leaf_strategy(),
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda pair: Concat(pair)),
            st.tuples(children, children).map(lambda pair: Or(pair)),
            st.tuples(children, children).map(lambda pair: And(pair)),
            children.map(Opposite),
        ),
        max_leaves=6,
    )


class TestPushDown:
    def test_double_negation_cancels(self):
        tree = q.opposite(q.opposite(q.up()))
        assert normalize(tree) == q.up()

    def test_negated_up_becomes_down(self):
        assert normalize(q.opposite(q.up())) == q.down()
        assert normalize(q.opposite(q.down())) == q.up()
        assert normalize(q.opposite(q.slope(30))) == q.slope(-30)

    def test_negated_flat_keeps_flag(self):
        result = normalize(q.opposite(q.flat()))
        assert isinstance(result, ShapeSegment)
        assert result.negated
        assert result.pattern.kind == "flat"

    def test_de_morgan_or(self):
        tree = q.opposite(q.or_(q.up(), q.flat()))
        result = normalize(tree)
        assert isinstance(result, And)
        kinds = [(seg.pattern.kind, seg.negated) for seg in result.segments()]
        assert kinds == [("down", False), ("flat", True)]

    def test_de_morgan_and(self):
        tree = q.opposite(q.and_(q.up(), q.down()))
        result = normalize(tree)
        assert isinstance(result, Or)

    def test_negation_distributes_over_concat(self):
        tree = q.opposite(q.concat(q.up(), q.down()))
        result = normalize(tree)
        assert isinstance(result, Concat)
        kinds = [seg.pattern.kind for seg in result.segments()]
        assert kinds == ["down", "up"]

    def test_negated_modifier_segment_keeps_flag(self):
        tree = q.opposite(q.up(sharp=True))
        result = normalize(tree)
        assert result.negated and result.pattern.kind == "up"


class TestFlattening:
    def test_nested_or_flattens(self):
        tree = Or((Or((q.up(), q.down())), q.flat()))
        result = normalize(tree)
        assert isinstance(result, Or)
        assert len(result.children) == 3

    def test_nested_and_flattens(self):
        tree = And((And((q.up(), q.down())), q.flat()))
        result = normalize(tree)
        assert len(result.children) == 3

    def test_concat_does_not_flatten(self):
        inner = Concat((q.down(), q.up()))
        tree = Concat((q.up(), inner))
        result = normalize(tree)
        assert isinstance(result.children[1], Concat)


class TestProperties:
    @given(tree_strategy())
    def test_normalize_removes_all_opposites(self, tree):
        assert is_normalized(normalize(tree))

    @given(tree_strategy())
    def test_normalize_is_idempotent(self, tree):
        once = normalize(tree)
        assert normalize(once) == once

    @given(tree_strategy())
    def test_segment_count_is_preserved(self, tree):
        before = len(list(tree.segments()))
        after = len(list(normalize(tree).segments()))
        assert before == after
